#include "core/fingerprint.hh"

#include <algorithm>

#include "telemetry/json.hh"
#include "telemetry/jsonparse.hh"

namespace txrace::core {

namespace {

/** Field separator inside one endpoint descriptor. */
constexpr char kFieldSep = '\x1f';
/** Separator between the two endpoint descriptors. */
constexpr char kPairSep = '\x1e';
/** Separator between the scope prefix and the pair. */
constexpr char kScopeSep = '\x1d';

/** Canonical (hashed) and pretty (printed) forms of one endpoint. */
struct Endpoint
{
    std::string canon;
    std::string pretty;
};

Endpoint
endpointOf(const ir::Program &prog, ir::InstrId id)
{
    const ir::Instruction &ins = prog.instr(id);
    const std::string &func = prog.function(prog.funcOf(id)).name;

    Endpoint e;
    e.canon = func;
    e.canon += kFieldSep;
    e.canon += ir::opName(ins.op);
    e.canon += kFieldSep;
    e.canon += ins.tag;

    e.pretty = ir::opName(ins.op);
    if (!ins.tag.empty()) {
        e.pretty += " '";
        e.pretty += ins.tag;
        e.pretty += "'";
    }
    e.pretty += " in @";
    e.pretty += func;
    return e;
}

} // namespace

uint64_t
fnv1a64(std::string_view data, uint64_t seed)
{
    uint64_t h = seed;
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
raceLabelKey(const std::string &tagA, const std::string &tagB)
{
    const std::string &lo = tagA <= tagB ? tagA : tagB;
    const std::string &hi = tagA <= tagB ? tagB : tagA;
    std::string out = lo;
    out += kFieldSep;
    out += hi;
    return out;
}

RaceSig
raceSig(const ir::Program &prog, const detector::Race &race,
        const std::string &scope)
{
    RaceSig sig;
    Endpoint ea = endpointOf(prog, race.first);
    Endpoint eb = endpointOf(prog, race.second);
    if (eb.canon < ea.canon)
        std::swap(ea, eb);
    sig.a = ea.pretty;
    sig.b = eb.pretty;
    sig.key = scope;
    sig.key += kScopeSep;
    sig.key += ea.canon;
    sig.key += kPairSep;
    sig.key += eb.canon;
    sig.hash = fnv1a64(sig.key);
    sig.label = raceLabelKey(prog.instr(race.first).tag,
                             prog.instr(race.second).tag);
    return sig;
}

void
writeRaceSig(telemetry::JsonWriter &w, const RaceSig &sig)
{
    w.beginObject();
    w.field("hash", sig.hash);
    w.field("key", sig.key);
    w.field("label", sig.label);
    w.field("a", sig.a);
    w.field("b", sig.b);
    w.endObject();
}

bool
readRaceSig(const telemetry::JsonValue &v, RaceSig &out,
            std::string &error)
{
    if (!v.isObject()) {
        error = "race sig is not an object";
        return false;
    }
    const telemetry::JsonValue *key = v.find("key");
    if (!key || !key->isString() || key->str.empty()) {
        error = "race sig: missing key";
        return false;
    }
    RaceSig sig;
    sig.key = key->str;
    sig.hash = fnv1a64(sig.key);
    if (const telemetry::JsonValue *h = v.find("hash");
        h && h->asU64() != sig.hash) {
        error = "race sig: hash does not match key";
        return false;
    }
    const telemetry::JsonValue *label = v.find("label");
    const telemetry::JsonValue *a = v.find("a");
    const telemetry::JsonValue *b = v.find("b");
    if (!label || !label->isString() || !a || !a->isString() || !b ||
        !b->isString()) {
        error = "race sig: missing label/endpoint strings";
        return false;
    }
    sig.label = label->str;
    sig.a = a->str;
    sig.b = b->str;
    out = std::move(sig);
    return true;
}

std::vector<std::pair<RaceSig, detector::Race>>
fingerprintedRaces(const ir::Program &prog,
                   const detector::RaceSet &races,
                   const std::string &scope)
{
    std::vector<std::pair<RaceSig, detector::Race>> out;
    for (const detector::Race &race : races.all())
        out.emplace_back(raceSig(prog, race, scope), race);
    std::sort(out.begin(), out.end(),
              [](const auto &x, const auto &y) {
                  if (x.first.hash != y.first.hash)
                      return x.first.hash < y.first.hash;
                  return x.first.key < y.first.key;
              });
    return out;
}

} // namespace txrace::core
