/**
 * @file
 * Exact-reproduction metadata for race findings.
 *
 * Every run of the simulator is a pure function of (program, config,
 * seed), so any finding can be replayed exactly by re-issuing the
 * command line that produced it — the property "Efficient
 * Deterministic Replay Using Complete Race Detection" argues every
 * production detector should ship with its reports. This module
 * renders that command line (`reproCommand`) and condenses the parts
 * of a RunConfig the CLI cannot express into a 64-bit digest
 * (`configDigest`) so a replayed run can assert it really is the
 * same configuration.
 */

#ifndef TXRACE_CORE_REPRO_HH
#define TXRACE_CORE_REPRO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/driver.hh"

namespace txrace::core {

/** How a CLI run names its program. */
enum class RunTarget : uint8_t { App, Pattern, ProgramFile };

/** Everything needed to rebuild a txrace_run command line. */
struct RunIdentity
{
    RunTarget target = RunTarget::App;
    /** App/pattern name or program file path. */
    std::string name;
    /** CLI mode token (txrace, txrace-dyn, tsan, ...). */
    std::string mode = "txrace";
    uint32_t workers = 4;
    uint64_t scale = 1;
    uint64_t seed = 1;
    /** Fault scenario ("" = none) and its horizon. */
    std::string fault;
    uint64_t faultHorizon = 0;
    bool governor = false;
    /** Monitor mode (overhead budget); renders --monitor and, when
     *  != 5.0, --budget-pct. */
    bool monitor = false;
    double budgetPct = 5.0;
    /** Whether the access-elision stack (static passes, HTM filter,
     *  detector fast paths) was on; false renders --no-elide. */
    bool elide = true;
    /** Multiplier on the app's interrupt rate (campaign perturbation
     *  variants; 1.0 = untouched). */
    double irqScale = 1.0;
    /** Whether the app model ran TSan-cost calibration (campaigns
     *  skip it; affects checkScale and hence schedules). */
    bool calibrated = true;
    /** Conflict-abort repair scheme; renders --slowpath region when
     *  not the default windowed mode. */
    SlowPathKind slowpath = SlowPathKind::Window;
};

/** CLI mode token for @p mode (inverse of txrace_run's parseMode). */
const char *cliModeName(RunMode mode);

/** Inverse of cliModeName; false (out untouched) on unknown tokens. */
bool cliModeFromName(const std::string &name, RunMode &out);

/** Inverse of slowPathKindName; false on unknown tokens. */
bool slowPathKindFromName(const std::string &name, SlowPathKind &out);

/**
 * Order-sensitive digest of every behaviour-affecting RunConfig
 * field: mode, sampling, machine knobs (seed included), HTM
 * geometry, pass config, governor, and the full fault plan.
 * Identical digests <=> runs replay identically.
 */
uint64_t configDigest(const RunConfig &cfg);

/**
 * One-line exact reproduction command, e.g.
 *   txrace_run --app vips --mode txrace --workers 4 --seed 3
 * Default-valued options are included so the line is self-contained.
 */
std::string reproCommand(const RunIdentity &id);

/** Parse a comma-separated seed list ("1,2,9"); fatal()s on junk. */
std::vector<uint64_t> parseSeedList(const std::string &list);

} // namespace txrace::core

#endif // TXRACE_CORE_REPRO_HH
