#include "core/policies.hh"

namespace txrace::core {

using sim::Bucket;
using sim::Machine;

void
RaceTmPolicy::onRunStart(Machine &)
{
}

void
RaceTmPolicy::onTxBegin(Machine &m, Tid t, const ir::Instruction &)
{
    if (m.liveThreads() <= 1 || !m.htm().canBegin())
        return;  // unmonitored, like TxRace's elision / hw limit
    m.addCost(t, m.config().cost.txBeginCost, Bucket::Txn);
    m.htm().begin(t);
    m.context(t).takeSnapshot(m.context(t).pc + 1);
    m.stats().add("tx.begins");
}

void
RaceTmPolicy::onTxEnd(Machine &m, Tid t, const ir::Instruction &)
{
    if (!m.htm().inTx(t))
        return;
    m.commitTx(t);
    m.addCost(t, m.config().cost.txEndCost, Bucket::Txn);
    m.stats().add("tx.committed");
    m.context(t).snap.valid = false;
}

void
RaceTmPolicy::onThreadExit(Machine &m, Tid t)
{
    if (m.htm().inTx(t)) {
        m.commitTx(t);
        m.stats().add("tx.committed");
    }
}

bool
RaceTmPolicy::onMemAccess(Machine &m, Tid t, const ir::Instruction &ins,
                          ir::Addr addr, bool is_write)
{
    auto res = m.htm().access(t, addr, is_write);
    // The extended hardware attributes each conflict directly: the
    // victim's debug bits name its instruction for the line, and we
    // are the requester. Report at cache-line granularity — which is
    // exactly why RaceTM-style reporting carries false-sharing false
    // positives that TxRace's software slow path filters out.
    for (Tid v : res.victims) {
        m.stats().add("tx.abort.conflict");
        ir::InstrId victim_instr = m.htm().lastConflictVictimInstr(v);
        if (victim_instr != ir::kNoInstr && ins.instrumented) {
            races_.record(victim_instr, ins.id,
                          is_write ? detector::RaceKind::WriteWrite
                                   : detector::RaceKind::WriteRead,
                          addr);
        }
        // The victim simply retries its region untransactionalized
        // (RaceTM has no software fallback); roll it back and let it
        // re-run bare.
        m.rollback(v, Bucket::Conflict);
        m.context(v).snap.valid = false;
    }
    if (res.selfCapacity) {
        // No software path to fall back to: run the region bare.
        m.stats().add("tx.abort.capacity");
        m.rollback(t, Bucket::Capacity);
        m.context(t).snap.valid = false;
        return false;
    }
    m.htm().noteAccessInstr(t, addr, ins.id);
    return true;
}

void
RaceTmPolicy::onInterruptAbort(Machine &m, Tid t)
{
    m.stats().add("tx.abort.unknown");
    m.rollback(t, Bucket::Unknown);
    m.context(t).snap.valid = false;
}

} // namespace txrace::core
