/**
 * @file
 * Stable machine-readable exports of a run's telemetry: the
 * txrace-metrics-v1 JSON document (counters, histograms, per-mode
 * phase breakdown, conflict heatmap) and the Chrome trace-event
 * timeline (`txrace_run --metrics-json` / `--trace-json`).
 */

#ifndef TXRACE_CORE_METRICS_EXPORT_HH
#define TXRACE_CORE_METRICS_EXPORT_HH

#include <ostream>
#include <string>

#include "core/driver.hh"
#include "ir/program.hh"
#include "telemetry/profile.hh"

namespace txrace::core {

/** Run identity recorded in the metrics document header. */
struct MetricsMeta
{
    std::string app;
    std::string mode;
    uint64_t seed = 0;
    uint32_t workers = 0;
    uint64_t scale = 0;
};

/**
 * Write the txrace-metrics-v1 JSON document for @p result to @p os.
 * @p prog (nullable) names conflict sites by their IR instruction and
 * enclosing function; without it sites carry only instruction ids.
 */
void writeMetricsJson(std::ostream &os, const MetricsMeta &meta,
                      const ir::Program *prog, const RunResult &result);

/**
 * Fold one run's observability state into a single-app
 * telemetry::Profile keyed by @p app: per-site abort and slow-path
 * counters from the telemetry bundle, owned-line filter hits and
 * transaction totals from the merged stats, and monitor sampling
 * state from the budget report. Callers accumulate runs (and fleets)
 * with Profile::merge and serialize with Profile::write.
 */
telemetry::Profile buildRunProfile(const std::string &app,
                                   const RunResult &result);

} // namespace txrace::core

#endif // TXRACE_CORE_METRICS_EXPORT_HH
