/**
 * @file
 * Stable machine-readable exports of a run's telemetry: the
 * txrace-metrics-v1 JSON document (counters, histograms, per-mode
 * phase breakdown, conflict heatmap) and the Chrome trace-event
 * timeline (`txrace_run --metrics-json` / `--trace-json`).
 */

#ifndef TXRACE_CORE_METRICS_EXPORT_HH
#define TXRACE_CORE_METRICS_EXPORT_HH

#include <ostream>
#include <string>

#include "core/driver.hh"
#include "ir/program.hh"

namespace txrace::core {

/** Run identity recorded in the metrics document header. */
struct MetricsMeta
{
    std::string app;
    std::string mode;
    uint64_t seed = 0;
    uint32_t workers = 0;
    uint64_t scale = 0;
};

/**
 * Write the txrace-metrics-v1 JSON document for @p result to @p os.
 * @p prog (nullable) names conflict sites by their IR instruction and
 * enclosing function; without it sites carry only instruction ids.
 */
void writeMetricsJson(std::ostream &os, const MetricsMeta &meta,
                      const ir::Program *prog, const RunResult &result);

} // namespace txrace::core

#endif // TXRACE_CORE_METRICS_EXPORT_HH
