#include "core/runmode.hh"

namespace txrace::core {

const char *
runModeName(RunMode mode)
{
    switch (mode) {
      case RunMode::Native:            return "Native";
      case RunMode::TSan:              return "TSan";
      case RunMode::TSanSampling:      return "TSan+Sampling";
      case RunMode::Eraser:            return "Eraser";
      case RunMode::RaceTM:            return "RaceTM";
      case RunMode::TxRaceNoOpt:       return "TxRace-NoOpt";
      case RunMode::TxRaceDynLoopcut:  return "TxRace-DynLoopcut";
      case RunMode::TxRaceProfLoopcut: return "TxRace-ProfLoopcut";
    }
    return "<bad-mode>";
}

} // namespace txrace::core
