#include "core/budget.hh"

#include <algorithm>

#include "support/log.hh"
#include "support/rng.hh"

namespace txrace::core {

using sim::Bucket;
using sim::Machine;

BudgetController::BudgetController(const BudgetConfig &cfg,
                                   uint64_t seed)
    : cfg_(cfg), seed_([&] {
          uint64_t s = seed ^ 0xb0d6e7bab1eULL;
          return splitmix64(s);
      }())
{
    double hard =
        cfg_.budgetPct / 100.0 * static_cast<double>(cfg_.windowBase);
    hardAllowed_ = static_cast<uint64_t>(hard);
    softAllowed_ = static_cast<uint64_t>(hard * cfg_.softFactor);
}

void
BudgetController::bindMetrics(telemetry::MetricRegistry &reg)
{
    reg_ = &reg;
    met_.windows = reg.counter("budget.windows");
    met_.windowsOver = reg.counter("budget.windows_over");
    met_.windowsSoftOver = reg.counter("budget.windows_soft_over");
    met_.gatedRegions = reg.counter("budget.gated_regions");
    met_.gatedChecks = reg.counter("budget.gated_checks");
    met_.sampledSkips = reg.counter("budget.sampled_skips");
    met_.siteCuts = reg.counter("budget.site_cuts");
    met_.siteProbes = reg.counter("budget.site_probes");
    met_.probeFailures = reg.counter("budget.probe_failures");
}

void
BudgetController::count(Machine &m, telemetry::MetricId id,
                        const char *name, uint64_t delta)
{
    if (reg_)
        reg_->add(id, delta);
    else
        m.stats().add(name, delta);
}

uint64_t
BudgetController::baseNow(const Machine &m) const
{
    return m.buckets()[static_cast<size_t>(Bucket::Base)];
}

uint64_t
BudgetController::overheadNow(const Machine &m) const
{
    // Every non-Base bucket is detection overhead; rollback
    // reclassification keeps Base equal to the native run's spend.
    uint64_t base = baseNow(m);
    uint64_t total = m.totalCost();
    return total >= base ? total - base : 0;
}

void
BudgetController::onRunStart(Machine &m)
{
    windowStartBase_ = baseNow(m);
    windowStartOverhead_ = overheadNow(m);
}

void
BudgetController::rollWindows(Machine &m)
{
    // Rollbacks can retroactively move Base cost into an abort bucket,
    // so the base clock may briefly read behind the window start;
    // windows only close on forward crossings.
    while (baseNow(m) >= windowStartBase_ + cfg_.windowBase)
        closeWindow(m, windowStartBase_ + cfg_.windowBase);
}

void
BudgetController::closeWindow(Machine &m, uint64_t base_end)
{
    uint64_t oh_now = overheadNow(m);
    uint64_t oh = oh_now >= windowStartOverhead_
        ? oh_now - windowStartOverhead_
        : 0;
    BudgetWindow w;
    w.base = cfg_.windowBase;
    w.overhead = oh;
    w.hardOver = oh > hardAllowed_;
    w.refused = windowRefused_;
    windows_.push_back(w);
    count(m, met_.windows, "budget.windows");
    if (w.hardOver)
        count(m, met_.windowsOver, "budget.windows_over");
    bool soft_over = oh > softAllowed_;
    if (soft_over)
        count(m, met_.windowsSoftOver, "budget.windows_soft_over");

    // Unsatisfiable: the budget is blown hard for several windows in
    // a row even while admission is refusing everything it can — the
    // floor of un-gateable overhead (sync tracking, in-flight
    // regions) alone exceeds the budget. Fail structurally instead of
    // thrashing forever.
    if (w.hardOver && w.refused) {
        if (++consecUnsat_ >= cfg_.unsatisfiableWindows)
            unsatisfiable_ = true;
    } else {
        consecUnsat_ = 0;
    }

    ++windowIndex_;
    if (soft_over) {
        // Cut the sites that dominated this window's attributed
        // spend, deepest spender first, until the excess is covered.
        uint64_t excess = oh - softAllowed_;
        std::vector<std::pair<ir::InstrId, uint64_t>> spenders;
        for (const auto &[site, s] : sites_)
            if (s.windowCost > 0 && s.shift < cfg_.floorShift)
                spenders.emplace_back(site, s.windowCost);
        std::sort(spenders.begin(), spenders.end(),
                  [](const auto &a, const auto &b) {
                      if (a.second != b.second)
                          return a.second > b.second;
                      return a.first < b.first;
                  });
        uint64_t covered = 0;
        for (const auto &[site, cost] : spenders) {
            SiteState &s = sites_[site];
            if (s.probing) {
                s.probing = false;
                s.probeBackoffExp =
                    std::min(s.probeBackoffExp + 1,
                             cfg_.maxProbeBackoffExp);
                count(m, met_.probeFailures, "budget.probe_failures");
            }
            s.shift = std::min(s.shift + cfg_.cutShift,
                               cfg_.floorShift);
            s.everCut = true;
            uint64_t interval = static_cast<uint64_t>(
                                    cfg_.reprobeWindows)
                                << std::min(s.probeBackoffExp,
                                            cfg_.maxProbeBackoffExp);
            s.nextProbeWindow = windowIndex_ + interval;
            ++siteCuts_;
            count(m, met_.siteCuts, "budget.site_cuts");
            if (m.events().enabled())
                m.events().record(m.currentStep(), 0, "budget-cut",
                                  strprintf("site %u to 1/%llu",
                                            site,
                                            1ULL << s.shift));
            covered += cost;
            if (covered >= excess)
                break;
        }
    } else {
        // Clean window: probes that survived it succeed, and due
        // sites climb one step back toward full instrumentation.
        for (auto &[site, s] : sites_) {
            if (s.probing) {
                s.probing = false;
                s.probeBackoffExp = 0;
            }
            if (s.shift > 0 && windowIndex_ >= s.nextProbeWindow) {
                --s.shift;
                s.probing = true;
                s.nextProbeWindow =
                    windowIndex_ +
                    std::max<uint64_t>(cfg_.reprobeWindows, 1);
                ++siteProbes_;
                count(m, met_.siteProbes, "budget.site_probes");
                if (m.events().enabled())
                    m.events().record(
                        m.currentStep(), 0, "budget-probe",
                        strprintf("site %u to 1/%llu", site,
                                  1ULL << s.shift));
            }
        }
    }

    for (auto &[site, s] : sites_)
        s.windowCost = 0;
    windowStartBase_ = base_end;
    windowStartOverhead_ = oh_now;
    windowRefused_ = false;
    pressure_ = soft_over;
}

bool
BudgetController::admitRegion(Machine &m, Tid t, uint64_t cost)
{
    (void)t;
    if (!cfg_.enabled)
        return true;
    rollWindows(m);
    uint64_t spent = overheadNow(m) - windowStartOverhead_;
    if (spent >= softAllowed_ || spent + cost > softAllowed_) {
        pressure_ = true;
        windowRefused_ = true;
        ++gatedRegions_;
        count(m, met_.gatedRegions, "budget.gated_regions");
        return false;
    }
    return true;
}

bool
BudgetController::admitCheck(Machine &m, Tid t, ir::InstrId site,
                             uint64_t cost)
{
    (void)t;
    if (!cfg_.enabled)
        return true;
    rollWindows(m);
    uint64_t spent = overheadNow(m) - windowStartOverhead_;
    if (spent >= softAllowed_ || spent + cost > softAllowed_) {
        pressure_ = true;
        windowRefused_ = true;
        ++gatedChecks_;
        count(m, met_.gatedChecks, "budget.gated_checks");
        return false;
    }
    SiteState &s = sites_[site];
    if (s.shift == 0)
        return true;
    if (!sampleDraw(s, site)) {
        ++sampledSkips_;
        count(m, met_.sampledSkips, "budget.sampled_skips");
        return false;
    }
    return true;
}

bool
BudgetController::sampleDraw(SiteState &s, ir::InstrId site)
{
    ++s.draws;
    uint64_t state = seed_ ^
                     (0x9e3779b97f4a7c15ULL * (site + 1)) ^
                     (0xbf58476d1ce4e5b9ULL * s.draws);
    uint64_t h = splitmix64(state);
    return (h & ((1ULL << s.shift) - 1)) == 0;
}

void
BudgetController::chargeSite(ir::InstrId site, uint64_t cost)
{
    if (!cfg_.enabled || site == ir::kNoInstr)
        return;
    sites_[site].windowCost += cost;
}

uint32_t
BudgetController::siteShift(ir::InstrId site) const
{
    auto it = sites_.find(site);
    return it != sites_.end() ? it->second.shift : 0;
}

BudgetReport
BudgetController::report() const
{
    BudgetReport r;
    r.enabled = cfg_.enabled;
    r.budgetPct = cfg_.budgetPct;
    r.windowBase = cfg_.windowBase;
    r.windows = windows_;
    for (const auto &[site, s] : sites_)
        if (s.everCut)
            r.siteShifts.emplace_back(site, s.shift);
    r.gatedRegions = gatedRegions_;
    r.gatedChecks = gatedChecks_;
    r.sampledSkips = sampledSkips_;
    r.siteCuts = siteCuts_;
    r.siteProbes = siteProbes_;
    return r;
}

} // namespace txrace::core
