/**
 * @file
 * canneal: simulated-annealing chip routing — famously written with
 * *intentionally* unsynchronized element swaps. All workers store to
 * random netlist locations with no locking, which is exactly one
 * distinct static race (the swap store against itself), detected
 * when two threads' swaps collide on a granule unordered. Line-level
 * collisions are far more common than granule collisions and produce
 * the app's steady diet of genuine HTM conflicts; the paper also
 * reports a high unknown-abort count (elevated interrupt rate in the
 * registry).
 */

#include "ir/builder.hh"
#include "workloads/apps.hh"

namespace txrace::workloads {

ir::Program
buildCanneal(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;

    ir::Addr netlist = b.alloc("netlist", 8192 * 8);
    ir::Addr temps = b.alloc("temperature-table", 128 * 8);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(8 * p.scale, [&] {
        b.loop(6, [&] {
            b.loop(8, [&] {
                b.load(AddrExpr::randomIn(temps, 128, 8),
                       "temperature");
                b.compute(2);
                b.store(AddrExpr::randomIn(netlist, 8192, 8),
                        "unsynchronized swap");
            });
            b.syscall(1);  // RNG / allocator
        });
        b.barrier(0, W);  // temperature step
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, W);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
