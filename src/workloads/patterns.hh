/**
 * @file
 * Catalog of classic concurrency-bug patterns (after Lu et al.,
 * ASPLOS 2008, which the paper cites for "data races often lie at the
 * root of other concurrency bugs"). Each entry is a small, focused
 * program plus its expected detection outcome per tool — a validation
 * matrix for the detectors that doubles as a library of regression
 * scenarios.
 */

#ifndef TXRACE_WORKLOADS_PATTERNS_HH
#define TXRACE_WORKLOADS_PATTERNS_HH

#include <string>
#include <vector>

#include "ir/program.hh"
#include "workloads/workloads.hh"

namespace txrace::workloads {

/** Expected outcome of one tool on one pattern. */
enum class Expectation {
    Detects,     ///< reports at least the documented race(s)
    Misses,      ///< reports nothing although a race exists
    Silent,      ///< correctly reports nothing (no race exists)
    FalseAlarm,  ///< reports although no race exists
};

/** One cataloged pattern. */
struct Pattern
{
    std::string name;
    std::string description;
    ir::Program program;
    /** True races present in the program (by happens-before). */
    size_t trueRaces;
    Expectation tsan;
    Expectation txrace;  ///< TxRace-ProfLoopcut, default seed
    Expectation eraser;
    Expectation racetm;  ///< fast-path-only reporting (§9)
    /** Ground-truth annotations of the true races (tag pairs);
     *  size() == trueRaces. Filled by buildPatternCatalog(). */
    std::vector<RaceLabel> groundTruth;
};

/** Build the whole catalog (programs are freshly constructed). */
std::vector<Pattern> buildPatternCatalog();

/** Names only (CLI listings). */
std::vector<std::string> patternNames();

/** Build a single pattern by name; fatal()s on unknown names. */
Pattern makePattern(const std::string &name);

} // namespace txrace::workloads

#endif // TXRACE_WORKLOADS_PATTERNS_HH
