#include "workloads/workloads.hh"

#include <algorithm>

#include "core/driver.hh"
#include "support/log.hh"
#include "workloads/apps.hh"

namespace txrace::workloads {

namespace {

/** Static description of one application row. */
struct Spec
{
    const char *name;
    ir::Program (*build)(const WorkloadParams &);
    /** Per-app interrupt pressure (drives unknown aborts). */
    double interruptPerStep;
    PaperRow paper;
    size_t planted;
    size_t initIdiom;
};

/** Table-1 order. Interrupt rates are scaled so that apps the paper
 *  reports with large unknown-abort counts (bodytrack, canneal,
 *  dedup, apache, x264) reproduce that pressure. */
const Spec kSpecs[] = {
    {"blackscholes", buildBlackscholes, 5e-5,
     {1.85, 1.82, 0, 0}, 0, 0},
    {"fluidanimate", buildFluidanimate, 8e-5,
     {15.23, 6.9, 1, 1}, 1, 0},
    {"swaptions", buildSwaptions, 6e-5,
     {6.77, 3.97, 0, 0}, 0, 0},
    {"freqmine", buildFreqmine, 1e-4,
     {14.0, 1.15, 0, 0}, 0, 0},
    {"vips", buildVips, 8e-5,
     {1195.0, 63.28, 112, 79}, 112, 0},
    {"raytrace", buildRaytrace, 6e-5,
     {5.09, 2.68, 2, 2}, 2, 0},
    {"ferret", buildFerret, 4e-3,
     {10.74, 5.52, 1, 1}, 1, 0},
    {"x264", buildX264, 3e-3,
     {6.45, 5.6, 64, 64}, 64, 0},
    {"bodytrack", buildBodytrack, 1.6e-2,
     {12.78, 8.9, 8, 6}, 8, 2},
    {"facesim", buildFacesim, 5e-3,
     {36.59, 11.49, 9, 8}, 9, 1},
    {"streamcluster", buildStreamcluster, 5e-5,
     {25.9, 2.97, 4, 4}, 4, 0},
    {"dedup", buildDedup, 5e-3,
     {4.84, 4.19, 0, 0}, 0, 0},
    {"canneal", buildCanneal, 2.5e-3,
     {4.39, 2.97, 1, 1}, 1, 0},
    {"apache", buildApache, 4e-4,
     {3.05, 1.97, 0, 0}, 0, 0},
};

/** The sustained-server soak scenario behind monitor mode. Not part
 *  of kSpecs: it is not a Table-1 row, so the paper benches (geomean,
 *  soak matrix, elision differential) never see it; makeApp and
 *  groundTruthRaces resolve it by name. The overhead column is not
 *  apache's ab-saturated 3.05x but a lightly-loaded production server
 *  (request handling dominated by application work, detection a thin
 *  layer on top) — the regime monitor mode is for: a hard single-digit
 *  budget must be reachable by shaving the hot sites, not by turning
 *  detection off. Race counts are the planted stream families. */
const Spec kStreamSpec = {
    "apache-stream", buildApacheStream, 4e-4,
    {1.15, 1.08, 24, 24}, 24, 0,
};

const Spec &
findSpec(const std::string &name)
{
    for (const Spec &s : kSpecs)
        if (name == s.name)
            return s;
    if (name == kStreamSpec.name)
        return kStreamSpec;
    fatal("unknown workload '%s'", name.c_str());
}

/** @p count indexed label pairs "<w> i" / "<r> i" (NeighborSites and
 *  InitIdiomSites emit exactly these tags). */
void
indexedPairs(std::vector<RaceLabel> &out, size_t count,
             const std::string &w, const std::string &r,
             bool init_idiom = false)
{
    for (size_t i = 0; i < count; ++i)
        out.push_back({w + " " + std::to_string(i),
                       r + " " + std::to_string(i), init_idiom});
}

/**
 * Solve for the checkScale that makes the TSan baseline hit the
 * paper's measured overhead on this substrate. The check-cost
 * contribution is linear in checkScale, so one probe run at scale 1
 * suffices:   target * native = (tsan1 - C1) + C1 * scale.
 */
double
calibrateCheckScale(const ir::Program &prog,
                    const sim::MachineConfig &machine, double target)
{
    core::RunConfig rc;
    rc.machine = machine;
    rc.machine.seed = 0xCA11Bull;
    rc.machine.cost.checkScale = 1.0;

    rc.mode = core::RunMode::Native;
    core::RunResult native = core::runProgram(prog, rc);

    rc.mode = core::RunMode::TSan;
    core::RunResult tsan = core::runProgram(prog, rc);

    uint64_t checks = tsan.stats.get("detector.reads") +
                      tsan.stats.get("detector.writes");
    double c1 = static_cast<double>(checks) *
                static_cast<double>(rc.machine.cost.checkCost);
    double x = static_cast<double>(native.totalCost);
    double y1 = static_cast<double>(tsan.totalCost);
    if (c1 <= 0.0 || x <= 0.0)
        return 1.0;
    double scale = (target * x - (y1 - c1)) / c1;
    return std::clamp(scale, 0.1, 2000.0);
}

} // namespace

std::vector<RaceLabel>
groundTruthRaces(const std::string &name)
{
    findSpec(name);  // fatal() on unknown names, even race-free ones
    std::vector<RaceLabel> gt;
    if (name == "fluidanimate") {
        // Unsynchronized global statistic: the store against itself.
        gt.push_back({"unsync step stat", "unsync step stat"});
    } else if (name == "vips") {
        // 112 row-boundary pixel exchanges between adjacent workers.
        indexedPairs(gt, 112, "boundary write", "boundary read");
    } else if (name == "raytrace") {
        // rays_traced += n without a lock: the read/write pair plus
        // the write against itself.
        gt.push_back({"rays_traced read", "rays_traced write"});
        gt.push_back({"rays_traced write", "rays_traced write"});
    } else if (name == "ferret") {
        // Ranking stage's query statistic, updated unlocked.
        gt.push_back({"stat write", "stat write"});
    } else if (name == "x264") {
        // Reference-frame rows read from the neighboring worker.
        indexedPairs(gt, 64, "ref write", "ref read");
    } else if (name == "bodytrack") {
        // Six particle-weight exchanges plus two init-idiom races on
        // the pose structures (the paper's 6-of-8).
        indexedPairs(gt, 6, "weight write", "weight read");
        indexedPairs(gt, 2, "init-idiom write", "init-idiom late read",
                     true);
    } else if (name == "facesim") {
        // Eight partition-boundary exchanges plus one init-idiom race
        // on the thread-pool structure (the paper's 8-of-9).
        indexedPairs(gt, 8, "boundary write", "boundary read");
        indexedPairs(gt, 1, "init-idiom write", "init-idiom late read",
                     true);
    } else if (name == "streamcluster") {
        // Four unsynchronized cluster-center updates.
        indexedPairs(gt, 4, "center write", "center read");
    } else if (name == "canneal") {
        // The intentionally unsynchronized element swap vs itself.
        gt.push_back({"unsynchronized swap", "unsynchronized swap"});
    } else if (name == "apache-stream") {
        // Per-site connection-table scavenging between adjacent
        // workers, recurring in every worker-pool generation.
        indexedPairs(gt, 24, "stream write", "stream read");
    }
    // blackscholes, swaptions, freqmine, dedup, apache: race-free.
    return gt;
}

const std::vector<std::string> &
appNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        for (const Spec &s : kSpecs)
            out.emplace_back(s.name);
        return out;
    }();
    return names;
}

AppModel
makeApp(const std::string &name, const WorkloadParams &params)
{
    if (params.nWorkers < 2)
        fatal("makeApp(%s): need at least two workers", name.c_str());
    const Spec &spec = findSpec(name);

    AppModel m;
    m.name = spec.name;
    m.program = spec.build(params);
    m.machine = sim::MachineConfig{};
    m.machine.interruptPerStep = spec.interruptPerStep;
    m.machine.htm.capacityJitter = 0.012;
    m.plantedRaces = spec.planted;
    m.initIdiomRaces = spec.initIdiom;
    m.paper = spec.paper;
    m.groundTruth = groundTruthRaces(name);

    if (params.calibrate) {
        m.machine.cost.checkScale = calibrateCheckScale(
            m.program, m.machine, spec.paper.tsanOverhead);
    }
    return m;
}

} // namespace txrace::workloads
