/**
 * @file
 * Internal: per-application program builders. Each returns an
 * uninstrumented mini-IR program for the given worker count and
 * scale. See the .cc file of each application for the modeled
 * characteristics and their mapping to the paper's Table 1 row.
 */

#ifndef TXRACE_WORKLOADS_APPS_HH
#define TXRACE_WORKLOADS_APPS_HH

#include "ir/program.hh"
#include "workloads/workloads.hh"

namespace txrace::workloads {

ir::Program buildBlackscholes(const WorkloadParams &p);
ir::Program buildFluidanimate(const WorkloadParams &p);
ir::Program buildSwaptions(const WorkloadParams &p);
ir::Program buildFreqmine(const WorkloadParams &p);
ir::Program buildVips(const WorkloadParams &p);
ir::Program buildRaytrace(const WorkloadParams &p);
ir::Program buildFerret(const WorkloadParams &p);
ir::Program buildX264(const WorkloadParams &p);
ir::Program buildBodytrack(const WorkloadParams &p);
ir::Program buildFacesim(const WorkloadParams &p);
ir::Program buildStreamcluster(const WorkloadParams &p);
ir::Program buildDedup(const WorkloadParams &p);
ir::Program buildCanneal(const WorkloadParams &p);
ir::Program buildApache(const WorkloadParams &p);
ir::Program buildApacheStream(const WorkloadParams &p);

} // namespace txrace::workloads

#endif // TXRACE_WORKLOADS_APPS_HH
