/**
 * @file
 * x264: frame-parallel video encoding. 64 distinct static races on
 * reference-frame rows read from the neighboring worker without
 * synchronization — but unlike vips, each site is touched in *every*
 * frame with wide windows, so the accesses reliably overlap and
 * TxRace finds all 64 (paper Table 1). The recurring conflicts keep
 * a substantial share of execution on the slow path, which is why
 * the paper's x264 sees the smallest relative gain over TSan
 * (5.6x vs 6.45x).
 */

#include "ir/builder.hh"
#include "workloads/apps.hh"
#include "workloads/idioms.hh"

namespace txrace::workloads {

ir::Program
buildX264(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;

    constexpr size_t kSites = 64;
    NeighborSites sites(b, "ref-rows", kSites, 8);
    ir::Addr mb = b.alloc("macroblocks", (W + 2) * 512);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(4 * p.scale, [&] {
        // Motion estimation on own macroblock rows: eight
        // bitstream-flush-terminated regions per frame.
        b.loop(8, [&] {
            b.loop(4, [&] {
                AddrExpr row = AddrExpr::perThread(mb, 512);
                row.loopStride = 8;
                b.load(row, "mb");
                b.store(row, "mb");
                b.compute(2);
            });
            b.syscall(1);
        });
        // Reference exchange: four regions of 16 sites each.
        for (int g = 0; g < 4; ++g) {
            for (int s = g * 16; s < (g + 1) * 16; ++s)
                b.store(sites.writeExpr(s),
                        "ref write " + std::to_string(s));
            for (int s = g * 16; s < (g + 1) * 16; ++s)
                b.load(sites.readExpr(s),
                       "ref read " + std::to_string(s));
            b.syscall(1);
        }
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, W);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
