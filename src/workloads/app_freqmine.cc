/**
 * @file
 * freqmine: frequent-itemset mining, dominated by a long
 * single-threaded tree-construction phase followed by a short
 * parallel phase (the paper reports only 84 transactions).
 *
 * This is the showcase of TxRace's single-threaded-mode elision
 * (§4.3): TSan instruments the sequential phase at full cost (14x in
 * the paper) while TxRace skips monitoring it entirely and lands at
 * 1.15x.
 */

#include "ir/builder.hh"
#include "workloads/apps.hh"

namespace txrace::workloads {

ir::Program
buildFreqmine(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;

    ir::Addr tree = b.alloc("fp-tree", 2048 * 8);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(10 * p.scale, [&] {
        b.lock(0);
        for (int k = 0; k < 3; ++k) {
            b.load(AddrExpr::randomIn(tree, 2048, 8), "tree node");
            b.store(AddrExpr::randomIn(tree, 2048, 8), "tree node");
        }
        b.unlock(0);
        b.compute(100);
    });
    b.endFunction();

    b.beginFunction("main");
    // Sequential FP-tree construction: single-threaded, memory-heavy.
    b.loop(1500 * p.scale, [&] {
        b.load(AddrExpr::randomIn(tree, 2048, 8), "build read");
        b.compute(2);
        b.store(AddrExpr::randomIn(tree, 2048, 8), "build write");
    });
    b.spawn(worker, W);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
