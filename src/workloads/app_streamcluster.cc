/**
 * @file
 * streamcluster: online clustering with barrier-separated phases and
 * a tight, system-call-bearing loop (the other app the paper singles
 * out for short-transaction management cost, Fig. 7).
 *
 * Per phase: six read-only distance-evaluation regions (the bulk of
 * the memory work, almost never conflicting) and one tiny
 * accumulator+center region. The per-worker cost accumulators are
 * packed 8 bytes apart, so all workers' slots share one cache line:
 * heavy false-sharing HTM conflicts with no race behind them (the
 * paper's second-highest conflict-abort count), which the slow path
 * filters cheaply because the conflicting region is small. Four
 * ordinary planted races on unsynchronized cluster-center updates
 * (found — accesses recur every phase).
 */

#include "ir/builder.hh"
#include "workloads/apps.hh"
#include "workloads/idioms.hh"

namespace txrace::workloads {

ir::Program
buildStreamcluster(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;

    constexpr size_t kSites = 4;
    NeighborSites sites(b, "cluster-centers", kSites, 8);
    ir::Addr points = b.alloc("points", 2048 * 8);
    ir::Addr acc = allocFalseSharingSlots(b, "cost-accumulators", 8,
                                          40);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(4 * p.scale, [&] {
        // Fifteen plain evaluation phases...
        b.loop(15, [&] {
            b.barrier(0, W);
            // Distance evaluation: read-only shared point data, in
            // six jittered, stream-ingest-terminated regions. The
            // jitter de-aligns the workers so the accumulator flush
            // at the phase end only sometimes overlaps.
            b.loop(6, [&] {
                b.loopJitter(4, 6, [&] {
                    b.load(AddrExpr::randomIn(points, 2048, 8),
                           "point");
                    b.compute(2);
                });
                b.syscall(1);
            });
            // Tiny accumulator flush: all workers' slots share one
            // cache line — frequent false-sharing conflicts with no
            // race, cheap to re-check on the slow path.
            b.store(falseSharingSlot(acc, 40), "cost accumulator");
            b.loop(4, [&] {
                b.load(AddrExpr::randomIn(points, 2048, 8), "point");
            });
            b.load(falseSharingSlot(acc, 40), "cost accumulator");
            b.syscall(1);
        });
        // ...then one recentering phase carrying the four races.
        b.barrier(1, W);
        for (size_t s = 0; s < kSites; ++s)
            b.store(sites.writeExpr(s),
                    "center write " + std::to_string(s));
        b.store(falseSharingSlot(acc, 40), "cost accumulator");
        for (size_t s = 0; s < kSites; ++s)
            b.load(sites.readExpr(s),
                   "center read " + std::to_string(s));
        b.syscall(1);
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, W);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
