/**
 * @file
 * vips: image transformation pipeline — the paper's extreme case
 * (TSan 1195x) and its most interesting false-negative study (§8.3,
 * Fig. 10): 112 distinct static races on row-boundary pixels between
 * adjacent workers, each with a narrow detection window, so a single
 * TxRace run finds a schedule-dependent subset (~79 in the paper)
 * and the union over runs converges to all 112.
 *
 * Structure, per race site: a batch of jittered, I/O-terminated work
 * chunks (each one transaction — vips's transaction count dwarfs its
 * conflict count), then one small boundary region that writes the
 * worker's own boundary slot and reads the neighbor's. The per-site
 * queue handoff of the real pipeline is modeled by a barrier, which
 * keeps workers loosely aligned; the chunk-length jitter plus
 * scheduler noise then decide whether the two boundary transactions
 * actually overlap — a narrow, schedule-sensitive window. Every 16th
 * site also streams a tile flush whose same-set strided stores
 * overflow the transactional write set (capacity aborts; loop-cut
 * target).
 */

#include "ir/builder.hh"
#include "workloads/apps.hh"
#include "workloads/idioms.hh"

namespace txrace::workloads {

ir::Program
buildVips(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;

    constexpr size_t kSites = 112;
    NeighborSites sites(b, "row-boundaries", kSites, 8);
    ir::Addr rows = b.alloc("image-rows", (W + 2) * 512);
    constexpr uint64_t kCapRows = 12;
    ir::Addr tile = b.alloc("tile-cache",
                            kCapRows * 4096 + (W + 1) * 64, 64);
    ir::Addr swap = allocBurst(b, "buffer-swap");

    ir::FuncId worker = b.beginFunction("worker");
    for (size_t s = 0; s < kSites; ++s) {
        // Work chunks: each ends at tile I/O, i.e. one region each.
        b.loop(12, [&] {
            b.loopJitter(5, 2, [&] {
                AddrExpr row = AddrExpr::perThread(rows, 512);
                row.loopStride = 8;
                b.load(row, "row pixel");
                b.store(row, "row pixel");
                b.compute(1);
            });
            b.syscall(1);
        });
        if (s % 16 == 15) {
            // Tile flush: same-set strided stores (capacity aborts
            // that the loop-cut optimization learns to avoid).
            b.loop(kCapRows, [&] {
                AddrExpr e = AddrExpr::perThread(tile, 64);
                e.loopStride = 4096;
                b.store(e, "tile line");
            });
            b.syscall(1);
        }
        if (s % 28 == 27) {
            // Buffer swap: irregular unrolled stores (loop-cut
            // cannot help here).
            emitCapacityBurst(b, swap);
            b.syscall(1);
        }
        // Queue handoff for this image region happens just before
        // the boundary exchange; the jittered warm-up then decides
        // how well the two neighbors' boundary transactions line up.
        b.barrier(0, W);
        b.loopJitter(2, 5, [&] { b.compute(4); });
        // Boundary region: write own slot first, read the neighbor's
        // last, with padding in between — the transaction holds the
        // written line until commit, so the detection window is the
        // region length.
        b.store(sites.writeExpr(s),
                "boundary write " + std::to_string(s));
        AddrExpr head = AddrExpr::perThread(rows, 512);
        for (int k = 0; k < 4; ++k)
            b.load(head, "row head");
        b.compute(20);
        b.load(sites.readExpr(s),
               "boundary read " + std::to_string(s));
        b.syscall(1);
    }
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, W);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
