#include "workloads/idioms.hh"

namespace txrace::workloads {

NeighborSites::NeighborSites(ir::ProgramBuilder &b,
                             const std::string &name, size_t slots,
                             uint32_t max_tid)
    : slots_(slots)
{
    rowStride_ = slots * mem::kLineSize;
    // One guard row below row 0 so the lowest worker's neighbor read
    // stays in bounds.
    ir::Addr raw = b.alloc(name, rowStride_ * (max_tid + 2),
                           mem::kLineSize);
    writerBase_ = raw + rowStride_;
}

ir::AddrExpr
NeighborSites::writeExpr(size_t slot) const
{
    ir::AddrExpr e;
    e.base = writerBase_ + slot * mem::kLineSize;
    e.threadStride = rowStride_;
    return e;
}

ir::AddrExpr
NeighborSites::readExpr(size_t slot) const
{
    ir::AddrExpr e;
    e.base = writerBase_ - rowStride_ + slot * mem::kLineSize;
    e.threadStride = rowStride_;
    return e;
}

InitIdiomSites::InitIdiomSites(ir::ProgramBuilder &b,
                               const std::string &name, size_t count)
    : count_(count)
{
    base_ = b.alloc(name, count * mem::kLineSize, mem::kLineSize);
}

void
InitIdiomSites::emitInit(ir::ProgramBuilder &b) const
{
    for (size_t i = 0; i < count_; ++i)
        b.store(ir::AddrExpr::absolute(base_ + i * mem::kLineSize),
                "init-idiom write " + std::to_string(i));
}

void
InitIdiomSites::emitLateRead(ir::ProgramBuilder &b) const
{
    for (size_t i = 0; i < count_; ++i)
        b.load(ir::AddrExpr::absolute(base_ + i * mem::kLineSize),
               "init-idiom late read " + std::to_string(i));
}

ir::Addr
allocFalseSharingSlots(ir::ProgramBuilder &b, const std::string &name,
                       uint32_t max_tid, uint64_t stride)
{
    return b.alloc(name, (max_tid + 1) * stride + mem::kGranuleSize,
                   mem::kGranuleSize);
}

ir::AddrExpr
falseSharingSlot(ir::Addr base, uint64_t stride)
{
    return ir::AddrExpr::perThread(base, stride);
}

ir::Addr
allocBurst(ir::ProgramBuilder &b, const std::string &name,
           uint64_t rows)
{
    return b.alloc(name, rows * 4096 + 16 * mem::kLineSize,
                   mem::kLineSize);
}

void
emitCapacityBurst(ir::ProgramBuilder &b, ir::Addr base, uint64_t rows)
{
    for (uint64_t r = 0; r < rows; ++r) {
        ir::AddrExpr e;
        e.base = base + r * 4096;
        e.threadStride = mem::kLineSize;
        b.store(e, "irregular flush");
    }
}

} // namespace txrace::workloads
