/**
 * @file
 * bodytrack: particle-filter body tracking with per-frame barriers.
 *
 * Eight planted races as in the paper: six ordinary races on
 * neighbor-worker particle weights, exchanged in one small region per
 * frame (wide windows; found), and two initialization-idiom races —
 * the main thread initializes shared pose structures right after
 * spawning the workers, which read them only at the very end of the
 * run; happens-before detection flags them, overlap-based detection
 * cannot (§8.3) — reproducing TxRace's 6-of-8.
 *
 * bodytrack also models the paper's highest unknown-abort pressure
 * (2M unknown aborts in Table 1) via an elevated per-app interrupt
 * rate, configured in the registry.
 */

#include "ir/builder.hh"
#include "workloads/apps.hh"
#include "workloads/idioms.hh"

namespace txrace::workloads {

ir::Program
buildBodytrack(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;

    constexpr size_t kSites = 6;
    NeighborSites sites(b, "particle-weights", kSites, 8);
    InitIdiomSites init(b, "pose-structs", 2);
    ir::Addr model = b.alloc("body-model", 1024 * 8);
    ir::Addr part = b.allocPrivate("particles", (W + 1) * 512);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(30 * p.scale, [&] {
        // Particle evaluation in five image-IO-terminated regions.
        b.loop(5, [&] {
            b.loop(5, [&] {
                b.load(AddrExpr::randomIn(model, 1024, 8), "model");
                b.load(AddrExpr::randomIn(model, 1024, 8), "model");
                AddrExpr e = AddrExpr::perThread(part, 512);
                e.loopStride = 8;
                b.storePrivate(e);
                b.compute(3);
            });
            b.syscall(1);
        });
        // Weight exchange: one small region with the six races.
        for (size_t s = 0; s < kSites; ++s)
            b.store(sites.writeExpr(s),
                    "weight write " + std::to_string(s));
        for (int k = 0; k < 3; ++k)
            b.load(AddrExpr::randomIn(model, 1024, 8), "model");
        for (size_t s = 0; s < kSites; ++s)
            b.load(sites.readExpr(s),
                   "weight read " + std::to_string(s));
        b.barrier(0, W);
    });
    // Late phase: read the pose structures main initialized at the
    // start, padded with enough instrumented work that the region
    // stays a (fast) transaction rather than a slow-forced small one.
    b.compute(200);
    for (int k = 0; k < 6; ++k)
        b.load(AddrExpr::randomIn(model, 1024, 8), "model");
    init.emitLateRead(b);
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, W);
    // Initialization-idiom: unsynchronized, far from the late reads.
    for (int k = 0; k < 6; ++k)
        b.load(AddrExpr::randomIn(model, 1024, 8), "model");
    init.emitInit(b);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
