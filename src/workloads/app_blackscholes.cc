/**
 * @file
 * blackscholes: embarrassingly parallel option pricing.
 *
 * Modeled characteristics (paper Table 1 row): compute-dominated
 * inner loop over options with thread-private inputs/outputs and a
 * small shared read-only pricing table; per-chunk barriers provide
 * region boundaries. No races, (almost) no conflicts, no capacity
 * pressure — both tools add little overhead (TSan 1.85x, TxRace
 * 1.82x in the paper).
 */

#include "ir/builder.hh"
#include "workloads/apps.hh"

namespace txrace::workloads {

ir::Program
buildBlackscholes(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;

    ir::Addr prices = b.alloc("prices", 64 * 8);
    ir::Addr in = b.allocPrivate("inputs", (W + 1) * 512);
    ir::Addr out = b.allocPrivate("outputs", (W + 1) * 512);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(12 * p.scale, [&] {
        // Options are priced two at a time between allocator calls,
        // so regions are tiny (< K memory ops) and TxRace sensibly
        // prefers the software path — which is why the paper's
        // blackscholes barely improves over TSan (1.82x vs 1.85x).
        b.loop(25, [&] {
            b.loop(2, [&] {
                AddrExpr in_e = AddrExpr::perThread(in, 512);
                in_e.loopStride = 8;
                b.loadPrivate(in_e);
                b.load(AddrExpr::randomIn(prices, 64, 8),
                       "price table");
                b.compute(30);
                AddrExpr out_e = AddrExpr::perThread(out, 512);
                out_e.loopStride = 8;
                b.storePrivate(out_e);
            });
            b.syscall(1);
        });
        b.barrier(0, W);
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, W);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
