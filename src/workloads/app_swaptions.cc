/**
 * @file
 * swaptions: Monte-Carlo pricing with a tight main loop that makes a
 * system call every iteration (the paper singles swaptions out for
 * exactly this: tight loops with system calls force very short
 * transactions whose xbegin/xend management cost dominates, Fig. 7).
 *
 * Also carries a capacity-prone phase: a strided store pattern whose
 * lines map into a single L1 set and overflow its associativity —
 * the loop-cut optimization's target (§4.3).
 */

#include "ir/builder.hh"
#include "workloads/apps.hh"
#include "workloads/idioms.hh"

namespace txrace::workloads {

ir::Program
buildSwaptions(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;

    ir::Addr params = b.alloc("yield-curve", 64 * 8);
    // Strided matrix: row stride 4096 B = 64 lines, so successive rows
    // land in the same L1 set; per-worker column offset of one line.
    constexpr uint64_t kCapRows = 14;
    ir::Addr cap = b.alloc("hjm-matrix",
                           kCapRows * 4096 + (W + 1) * 64, 64);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(1500 * p.scale, [&] {
        for (int k = 0; k < 6; ++k)
            b.load(AddrExpr::randomIn(params, 64, 8), "curve");
        b.syscall(2);  // RNG reseed via the OS, every iteration
    });
    // Capacity-prone phase: one same-set streaming store per row.
    b.loop(12 * p.scale, [&] {
        b.loop(kCapRows, [&] {
            AddrExpr e = AddrExpr::perThread(cap, 64);
            e.loopStride = 4096;
            b.store(e, "hjm row");
        });
        b.syscall(2);
    });
    // Portfolio re-aggregation: an unrolled, irregular store burst
    // that no loop-cut can segment (residual capacity aborts).
    ir::Addr agg = allocBurst(b, "aggregation");
    b.loop(3 * p.scale, [&] {
        emitCapacityBurst(b, agg);
        b.syscall(2);
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, W);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
