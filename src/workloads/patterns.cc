#include "workloads/patterns.hh"

#include "ir/builder.hh"
#include "support/log.hh"

namespace txrace::workloads {

using ir::AddrExpr;
using ir::ProgramBuilder;

namespace {

/** Enough instrumented reads to keep a region above the K threshold
 *  and transactional (so fast-path behaviour is actually exercised). */
void
pad(ProgramBuilder &b, ir::Addr base)
{
    for (int i = 0; i < 6; ++i)
        b.load(AddrExpr::absolute(base + 8 * i), "pad");
}

Pattern
unlockedCounter()
{
    ProgramBuilder b;
    ir::Addr data = b.alloc("data", 4096);
    ir::Addr counter = b.alloc("counter", 8);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(15, [&] {
        pad(b, data);
        b.store(AddrExpr::absolute(counter), "counter++ unlocked");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    return {"unlocked-counter",
            "shared counter incremented with no lock; the textbook "
            "write-write race, hot enough for every tool",
            b.build(), 1, Expectation::Detects, Expectation::Detects,
            Expectation::Detects,
            Expectation::Detects};
}

Pattern
atomicityViolation()
{
    // Each access is individually locked, so there is NO data race —
    // yet the read-modify-write is not atomic (a semantic bug no race
    // detector can see). Documents the limit of race detection.
    ProgramBuilder b;
    ir::Addr data = b.alloc("data", 4096);
    ir::Addr x = b.alloc("x", 8);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(12, [&] {
        b.lock(0);
        pad(b, data);
        b.load(AddrExpr::absolute(x), "read x");
        b.unlock(0);
        b.compute(10);  // the atomicity hole
        b.lock(0);
        pad(b, data);
        b.store(AddrExpr::absolute(x), "write stale x");
        b.unlock(0);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    return {"atomicity-violation",
            "read and write of x each hold the lock, but not "
            "together: race-free yet broken — invisible to all race "
            "detectors",
            b.build(), 0, Expectation::Silent, Expectation::Silent,
            Expectation::Silent,
            Expectation::Silent};
}

Pattern
orderViolation()
{
    // The consumer was supposed to wait for the producer's signal but
    // reads the shared buffer immediately: a write-read race with a
    // wide window (both sides busy around the same time).
    ProgramBuilder b;
    ir::Addr data = b.alloc("data", 4096);
    ir::Addr buf = b.alloc("buf", 8);
    ir::FuncId producer = b.beginFunction("producer");
    b.loop(12, [&] {
        pad(b, data);
        b.store(AddrExpr::absolute(buf), "produce");
        b.syscall(1);
    });
    b.signal(0);  // signaled only once, at the very end
    b.endFunction();
    ir::FuncId consumer = b.beginFunction("consumer");
    b.loop(12, [&] {
        pad(b, data);
        b.load(AddrExpr::absolute(buf), "consume too early");
        b.syscall(1);
    });
    b.wait(0);  // the wait is misplaced: after the reads
    b.endFunction();
    b.beginFunction("main");
    b.spawn(producer, 1);
    b.spawn(consumer, 1);
    b.joinAll();
    b.endFunction();
    return {"order-violation",
            "consumer reads before the producer's signal (the wait is "
            "misplaced); overlapping accesses that every "
            "happens-before or overlap detector catches",
            b.build(), 1, Expectation::Detects, Expectation::Detects,
            Expectation::Detects,
            Expectation::Detects};
}

Pattern
unsafePublication()
{
    // The initialization idiom of §8.3: main initializes right after
    // spawning, workers read at the very end. Far apart in time.
    ProgramBuilder b;
    ir::Addr data = b.alloc("data", 4096);
    ir::Addr obj = b.alloc("obj", 64, 64);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(40, [&] {
        pad(b, data);
        b.syscall(1);
    });
    pad(b, data);
    b.load(AddrExpr::absolute(obj), "late read of published obj");
    b.syscall(1);
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    pad(b, data);
    b.store(AddrExpr::absolute(obj), "unsynchronized init");
    b.joinAll();
    b.endFunction();
    return {"unsafe-publication",
            "object initialized (unsynchronized) right after spawn "
            "and read only much later: a real race that overlap-based "
            "detection cannot see, and lockset forgives as "
            "initialization",
            b.build(), 1, Expectation::Detects, Expectation::Misses,
            Expectation::Misses,
            Expectation::Misses};
}

Pattern
doubleCheckedLocking()
{
    // Broken DCL: the fast-path check reads the pointer without the
    // lock while the initializer writes it under the lock.
    ProgramBuilder b;
    ir::Addr data = b.alloc("data", 4096);
    ir::Addr ptr = b.alloc("singleton", 8);
    ir::FuncId reader = b.beginFunction("reader");
    b.loop(15, [&] {
        pad(b, data);
        b.load(AddrExpr::absolute(ptr), "unlocked fast-path check");
        b.syscall(1);
    });
    b.endFunction();
    ir::FuncId initer = b.beginFunction("initializer");
    b.loop(15, [&] {
        b.lock(0);
        pad(b, data);
        b.store(AddrExpr::absolute(ptr), "locked init write");
        b.unlock(0);
        b.compute(5);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(reader, 2);
    b.spawn(initer, 1);
    b.joinAll();
    b.endFunction();
    return {"double-checked-locking",
            "the classic broken singleton: unlocked read vs locked "
            "write",
            b.build(), 1, Expectation::Detects, Expectation::Detects,
            Expectation::Detects,
            Expectation::Detects};
}

Pattern
barrierDoubleBuffer()
{
    ProgramBuilder b;
    ir::Addr cells = b.alloc("cells", 6 * 64, 64);
    ir::Addr data = b.alloc("data", 4096);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(12, [&] {
        pad(b, data);
        b.store(AddrExpr::perThread(cells, 64), "fill own cell");
        b.barrier(0, 3);
        b.load(AddrExpr::perThread(cells + 64, 64), "read neighbor");
        b.barrier(1, 3);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    return {"barrier-double-buffer",
            "barrier-ordered producer/consumer cells: race-free, but "
            "no lock is ever held — the lockset blind spot",
            b.build(), 0, Expectation::Silent, Expectation::Silent,
            Expectation::FalseAlarm,
            Expectation::Silent};
}

Pattern
falseSharing()
{
    ProgramBuilder b;
    ir::Addr data = b.alloc("data", 4096);
    ir::Addr slots = b.alloc("slots", 64, 64);  // 4 slots, one line
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(15, [&] {
        pad(b, data);
        b.store(AddrExpr::perThread(slots, 8), "own packed slot");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    return {"false-sharing",
            "per-thread slots packed into one cache line: floods the "
            "HTM fast path with conflicts, all correctly dismissed by "
            "the precise slow path",
            b.build(), 0, Expectation::Silent, Expectation::Silent,
            Expectation::Silent,
            Expectation::FalseAlarm};
}

Pattern
racyFlagSpin()
{
    // A bounded spin on a completion flag with no synchronization:
    // the reader polls constantly, so the racing accesses overlap in
    // nearly every schedule.
    ProgramBuilder b;
    ir::Addr data = b.alloc("data", 4096);
    ir::Addr flag = b.alloc("done-flag", 8);
    ir::FuncId waiter = b.beginFunction("waiter");
    b.loop(30, [&] {
        pad(b, data);
        b.load(AddrExpr::absolute(flag), "spin on flag");
        b.syscall(1);
    });
    b.endFunction();
    ir::FuncId setter = b.beginFunction("setter");
    b.loop(8, [&] {
        // The progress flag is stored early in the region, so the
        // written line stays in the transaction's write set long
        // enough for the TxFail protocol to catch the writer too
        // (a last-instruction store would usually commit first and
        // escape — §6's second false-negative source).
        b.store(AddrExpr::absolute(flag), "set flag without sync");
        pad(b, data);
        b.compute(20);
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(waiter, 2);
    b.spawn(setter, 1);
    b.joinAll();
    b.endFunction();
    return {"racy-flag-spin",
            "ad-hoc synchronization: spinning on a plain flag; the "
            "polling loop overlaps the unsynchronized store, and the "
            "read-then-written flag escalates Eraser's state machine "
            "too",
            b.build(), 1, Expectation::Detects, Expectation::Detects,
            Expectation::Detects,
            Expectation::Detects};
}

Pattern
lockedControl()
{
    ProgramBuilder b;
    ir::Addr data = b.alloc("data", 4096);
    ir::Addr x = b.alloc("x", 8);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(15, [&] {
        b.lock(0);
        pad(b, data);
        b.load(AddrExpr::absolute(x), "locked read");
        b.store(AddrExpr::absolute(x), "locked write");
        b.unlock(0);
        b.compute(5);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    return {"locked-control",
            "the correctly synchronized control: consistent locking, "
            "no tool may report anything",
            b.build(), 0, Expectation::Silent, Expectation::Silent,
            Expectation::Silent,
            Expectation::Silent};
}

/** Ground-truth tag pairs for the racy patterns (the others stay
 *  empty, matching trueRaces == 0). */
void
annotateGroundTruth(Pattern &p)
{
    if (p.name == "unlocked-counter")
        p.groundTruth = {{"counter++ unlocked", "counter++ unlocked"}};
    else if (p.name == "order-violation")
        p.groundTruth = {{"produce", "consume too early"}};
    else if (p.name == "unsafe-publication")
        p.groundTruth = {{"unsynchronized init",
                          "late read of published obj", true}};
    else if (p.name == "double-checked-locking")
        p.groundTruth = {{"locked init write",
                          "unlocked fast-path check"}};
    else if (p.name == "racy-flag-spin")
        p.groundTruth = {{"set flag without sync", "spin on flag"}};
}

} // namespace

std::vector<Pattern>
buildPatternCatalog()
{
    std::vector<Pattern> out;
    out.push_back(unlockedCounter());
    out.push_back(atomicityViolation());
    out.push_back(orderViolation());
    out.push_back(unsafePublication());
    out.push_back(doubleCheckedLocking());
    out.push_back(barrierDoubleBuffer());
    out.push_back(falseSharing());
    out.push_back(racyFlagSpin());
    out.push_back(lockedControl());
    for (Pattern &p : out)
        annotateGroundTruth(p);
    return out;
}

std::vector<std::string>
patternNames()
{
    std::vector<std::string> names;
    for (const Pattern &p : buildPatternCatalog())
        names.push_back(p.name);
    return names;
}

Pattern
makePattern(const std::string &name)
{
    for (Pattern &p : buildPatternCatalog())
        if (p.name == name)
            return std::move(p);
    fatal("unknown pattern '%s'", name.c_str());
}

} // namespace txrace::workloads
