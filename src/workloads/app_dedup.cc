/**
 * @file
 * dedup: compression pipeline (chunk → hash/compress) over semaphore
 * queues. No data races (the paper reports zero), but a packed
 * shared hash-bucket counter array produces false-sharing conflicts,
 * and occasional large chunk writes overflow the transactional write
 * set (moderate capacity aborts).
 */

#include <algorithm>

#include "ir/builder.hh"
#include "workloads/apps.hh"
#include "workloads/idioms.hh"

namespace txrace::workloads {

ir::Program
buildDedup(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;
    const uint32_t n_a = std::max(1u, W / 2);
    const uint32_t n_b = std::max(1u, W - n_a);
    const uint64_t chunks = 120 * p.scale;
    const uint64_t per_a = chunks / n_a;
    const uint64_t per_b = (per_a * n_a) / n_b;

    ir::Addr table = b.alloc("hash-table", 2048 * 8);
    ir::Addr buckets = allocFalseSharingSlots(b, "bucket-hits", 8);
    constexpr uint64_t kCapRows = 11;
    ir::Addr out = b.alloc("chunk-out",
                           kCapRows * 4096 + (W + 1) * 64, 64);

    constexpr uint64_t kQ0 = 0, kQ1 = 1;

    ir::FuncId chunker = b.beginFunction("chunker");
    b.loop(per_a, [&] {
        b.wait(kQ0);
        b.loop(6, [&] {
            b.load(AddrExpr::randomIn(table, 2048, 8), "fingerprint");
        });
        b.store(falseSharingSlot(buckets), "bucket hit");
        b.signal(kQ1);
    });
    b.endFunction();

    ir::FuncId compressor = b.beginFunction("compress");
    b.loop(per_b / 2, [&] {
        b.loop(2, [&] {
            b.wait(kQ1);
            b.compute(12);
            b.loop(8, [&] {
                b.load(AddrExpr::randomIn(table, 2048, 8), "digest");
            });
        });
        // Output flush: same-set strided stores (capacity target).
        b.loop(kCapRows, [&] {
            AddrExpr e = AddrExpr::perThread(out, 64);
            e.loopStride = 4096;
            b.store(e, "compressed block");
        });
        b.syscall(2);  // write to output file
    });
    // Container finalization: irregular unrolled stores.
    ir::Addr final_burst = allocBurst(b, "container-finalize");
    b.loop(2 * p.scale, [&] {
        emitCapacityBurst(b, final_burst);
        b.syscall(1);
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(chunker, n_a);
    b.spawn(compressor, n_b);
    b.loop(per_a * n_a, [&] { b.signal(kQ0); });
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
