/**
 * @file
 * raytrace: frame-parallel ray tracing over a shared read-only
 * scene; long compute-heavy regions and very few transactions (143
 * in the paper).
 *
 * Two planted races on one unsynchronized global ray counter (the
 * load/store pair against itself yields exactly two distinct static
 * racy pairs, matching the paper's count); the counter is touched at
 * every frame edge by all workers, so the accesses overlap and
 * TxRace finds both.
 */

#include "ir/builder.hh"
#include "workloads/apps.hh"

namespace txrace::workloads {

ir::Program
buildRaytrace(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;

    ir::Addr scene = b.alloc("scene-bvh", 4096 * 8);
    ir::Addr fb = b.allocPrivate("framebuffer", (W + 1) * 512);
    ir::Addr counter = b.alloc("ray-counter", 8);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(3 * p.scale, [&] {
        b.loop(60, [&] {
            b.load(AddrExpr::randomIn(scene, 4096, 8), "bvh");
            b.load(AddrExpr::randomIn(scene, 4096, 8), "bvh");
            b.compute(25);
            AddrExpr e = AddrExpr::perThread(fb, 512);
            e.loopStride = 8;
            b.storePrivate(e);
        });
        // rays_traced += n, with no lock: the planted race pair.
        b.load(AddrExpr::absolute(counter), "rays_traced read");
        b.store(AddrExpr::absolute(counter), "rays_traced write");
        b.barrier(0, W);
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, W);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
