/**
 * @file
 * Synthetic models of the paper's evaluation workloads: the 13
 * PARSEC applications (simlarge) plus the Apache web server.
 *
 * The real applications cannot run on this substrate, so each is
 * replaced by a parameterized mini-IR program tuned to reproduce the
 * *characteristics that drive TxRace's behaviour* (see Table 1 of the
 * paper and DESIGN.md): transaction volume, conflict/capacity/unknown
 * abort propensity, system-call density, shared-memory access
 * density, synchronization structure, and — most importantly — the
 * planted data races, including the initialization-idiom races that
 * TxRace misses in bodytrack/facesim and the schedule-sensitive race
 * population of vips (§8.3).
 *
 * The per-application TSan check-cost multiplier (checkScale) is
 * *calibrated* so the TSan baseline's overhead approximates the
 * paper's measured column; everything TxRace-related is then a
 * genuine measurement on top of that calibrated substrate.
 */

#ifndef TXRACE_WORKLOADS_WORKLOADS_HH
#define TXRACE_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "ir/program.hh"
#include "sim/machine.hh"

namespace txrace::workloads {

/** Build-time workload parameters. */
struct WorkloadParams
{
    /** Worker thread count (the paper evaluates 2/4/8; default 4). */
    uint32_t nWorkers = 4;
    /** Work multiplier for longer runs (1 = default benchmark size). */
    uint64_t scale = 1;
    /** Run the TSan-overhead calibration (costs two quick runs). */
    bool calibrate = true;
};

/**
 * Ground-truth annotation of one planted race: the source tags of
 * the two racy static instructions (equal tags for a self-race).
 * Tags — not InstrIds — because instruction numbering changes with
 * the instrumentation variant while tags survive every pass; the
 * canonical matching key is core::raceLabelKey(a, b), which equals
 * RaceSig::label of a detected race at the same pair.
 */
struct RaceLabel
{
    std::string a;
    std::string b;
    /** Initialization-idiom race (§8.3): happens-before detectors
     *  report it, overlap-based detection is expected to miss it. */
    bool initIdiom = false;
};

/** The paper's published per-application results (Table 1 / 2). */
struct PaperRow
{
    double tsanOverhead = 0.0;
    double txraceOverhead = 0.0;
    uint64_t tsanRaces = 0;
    uint64_t txraceRaces = 0;
};

/** A constructed application model, ready to run. */
struct AppModel
{
    std::string name;
    ir::Program program;
    /** Machine defaults: calibrated checkScale, app interrupt rate.
     *  Callers override the seed (and thread-count-dependent knobs). */
    sim::MachineConfig machine;
    /** Number of distinct static races planted in the program. */
    size_t plantedRaces = 0;
    /** Of those, how many are initialization-idiom races that a
     *  purely overlap-based detector is expected to miss. */
    size_t initIdiomRaces = 0;
    /** The paper's numbers, for side-by-side reporting. */
    PaperRow paper;
    /** Ground-truth race annotations; size() == plantedRaces and the
     *  initIdiom subset has size initIdiomRaces. Campaigns and tests
     *  score precision/recall against these. */
    std::vector<RaceLabel> groundTruth;
};

/** Ground-truth annotations for @p name without building the program
 *  (fatal()s on unknown names). makeApp() fills AppModel::groundTruth
 *  from the same table. */
std::vector<RaceLabel> groundTruthRaces(const std::string &name);

/** All application names, in the paper's Table 1 order. */
const std::vector<std::string> &appNames();

/** Build one application model. fatal()s on unknown names. */
AppModel makeApp(const std::string &name,
                 const WorkloadParams &params = {});

} // namespace txrace::workloads

#endif // TXRACE_WORKLOADS_WORKLOADS_HH
