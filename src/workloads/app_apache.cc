/**
 * @file
 * apache: worker-pool web server driven by an accept loop (modeled
 * after the paper's ab benchmark: 300k requests over 20 concurrent
 * clients, scaled down). Request handling is system-call heavy
 * (socket read/write) with light shared-cache reads; per-worker
 * statistics live on separate cache lines, so conflicts are rare and
 * there are no races — the tool overheads come almost entirely from
 * instrumentation management.
 */

#include "ir/builder.hh"
#include "workloads/apps.hh"
#include "workloads/idioms.hh"

namespace txrace::workloads {

ir::Program
buildApache(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;
    const uint64_t requests = 120 * p.scale;
    const uint64_t per_worker = requests / W;

    ir::Addr cache = b.alloc("doc-cache", 2048 * 8);
    // Padded per-worker stats: one cache line each, no false sharing.
    ir::Addr stats = b.alloc("worker-stats", (W + 1) * 64, 64);

    constexpr uint64_t kConnQ = 0;

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(per_worker, [&] {
        b.wait(kConnQ);
        b.syscall(4);  // read request
        b.loop(20, [&] {
            b.load(AddrExpr::randomIn(cache, 2048, 8), "doc cache");
        });
        b.compute(10);
        b.store(AddrExpr::perThread(stats, 64), "request count");
        b.syscall(4);  // write response
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, W);
    b.loop(per_worker * W, [&] { b.signal(kConnQ); });
    b.joinAll();
    b.endFunction();
    return b.build();
}

/**
 * apache-stream: the long-running request-stream variant that backs
 * monitor mode's sustained-server soak. Four generations of the
 * worker pool (connection churn: the pool is torn down and respawned
 * between batches, so join->spawn edges confine every race to one
 * generation) each serve a stream of requests per site. Between
 * request bursts, adjacent workers exchange a per-site connection-
 * table entry with no synchronization — the same schedule-sensitive
 * neighbor-pair families as §8.3, recurring for as long as the server
 * runs. The static write/read pair per site is shared by every
 * generation, so ground truth is exactly kStreamSites distinct races
 * ("stream write i" / "stream read i"); a happens-before detector
 * finds all of them (the per-site barrier orders nothing between a
 * writer and its neighbor's read), while TxRace's detection depends
 * on the transactions actually overlapping.
 */
ir::Program
buildApacheStream(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;
    constexpr uint32_t kBatches = 4;
    constexpr size_t kSites = 24;
    /** Keep-alive requests per connection. */
    const uint64_t reqs = 6 * p.scale;

    NeighborSites sites(b, "conn-table", kSites, kBatches * W);
    ir::Addr cache = b.alloc("doc-cache", 2048 * 8);
    ir::Addr stats = b.alloc("worker-stats",
                             (kBatches * W + 1) * 64, 64);
    constexpr uint64_t kConnQ = 0;

    ir::FuncId worker = b.beginFunction("worker");
    // Serving phase: accept a keep-alive connection per site slot,
    // then serve its pipelined requests. The request body is ONE
    // static region (the connection loop is a real loop, not
    // unrolled), so its doc-cache sites stay hot for the entire run —
    // the budget controller can learn them once and keep them cut.
    // Request handling is dominated by application work (the paper's
    // lightly-loaded production regime), with the shared document
    // cache the only instrumented traffic.
    b.loop(kSites, [&] {
        b.wait(kConnQ);  // accept
        b.loop(reqs, [&] {
            b.syscall(4);  // read request
            b.load(AddrExpr::randomIn(cache, 2048, 8), "doc cache");
            b.load(AddrExpr::randomIn(cache, 2048, 8), "doc cache");
            b.load(AddrExpr::randomIn(cache, 2048, 8), "doc cache");
            b.compute(320);  // render the response
            b.store(AddrExpr::perThread(stats, 64), "request count");
            b.syscall(4);  // write response
        });
    });
    // Scavenging phase: adjacent workers sweep each other's
    // connection-table entries with no lock — one distinct static
    // write/read pair per slot (unrolled), the recurring race
    // families of the soak. The barrier loosely aligns the pool, the
    // jitter decides how well the two sides' episodes line up, and
    // the table-maintenance compute between slots spreads the
    // scavenge across budget windows the way background maintenance
    // spreads through a real server's timeline.
    for (size_t s = 0; s < kSites; ++s) {
        b.barrier(0, W);
        b.loopJitter(2, 5, [&] { b.compute(4); });
        b.store(sites.writeExpr(s),
                "stream write " + std::to_string(s));
        b.compute(20);
        b.load(sites.readExpr(s),
               "stream read " + std::to_string(s));
        b.syscall(1);
        b.compute(2500);  // table maintenance / stats rollup
    }
    b.endFunction();

    b.beginFunction("main");
    // Connection churn: each generation tears the whole pool down
    // and respawns it, so join->spawn edges confine every race to
    // one generation; the static pairs recur in all of them.
    for (uint32_t g = 0; g < kBatches; ++g) {
        b.spawn(worker, W);
        b.loop(kSites * W, [&] { b.signal(kConnQ); });
        b.joinAll();
    }
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
