/**
 * @file
 * apache: worker-pool web server driven by an accept loop (modeled
 * after the paper's ab benchmark: 300k requests over 20 concurrent
 * clients, scaled down). Request handling is system-call heavy
 * (socket read/write) with light shared-cache reads; per-worker
 * statistics live on separate cache lines, so conflicts are rare and
 * there are no races — the tool overheads come almost entirely from
 * instrumentation management.
 */

#include "ir/builder.hh"
#include "workloads/apps.hh"

namespace txrace::workloads {

ir::Program
buildApache(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;
    const uint64_t requests = 120 * p.scale;
    const uint64_t per_worker = requests / W;

    ir::Addr cache = b.alloc("doc-cache", 2048 * 8);
    // Padded per-worker stats: one cache line each, no false sharing.
    ir::Addr stats = b.alloc("worker-stats", (W + 1) * 64, 64);

    constexpr uint64_t kConnQ = 0;

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(per_worker, [&] {
        b.wait(kConnQ);
        b.syscall(4);  // read request
        b.loop(20, [&] {
            b.load(AddrExpr::randomIn(cache, 2048, 8), "doc cache");
        });
        b.compute(10);
        b.store(AddrExpr::perThread(stats, 64), "request count");
        b.syscall(4);  // write response
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, W);
    b.loop(per_worker * W, [&] { b.signal(kConnQ); });
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
