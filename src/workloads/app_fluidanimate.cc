/**
 * @file
 * fluidanimate: particle simulation over a striped grid with
 * fine-grained per-stripe locking.
 *
 * Modeled characteristics: very many small critical-section
 * transactions; stripes are deliberately *not* cache-line aligned, so
 * adjacent stripes' boundary cells share lines and concurrent
 * critical sections raise frequent HTM conflicts that carry no data
 * race (false sharing — the slow path filters them). One real race:
 * an unsynchronized per-step update of a global statistic (the
 * paper's single fluidanimate race, which TxRace finds).
 */

#include "ir/builder.hh"
#include "workloads/apps.hh"

namespace txrace::workloads {

ir::Program
buildFluidanimate(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;

    constexpr uint64_t kStripes = 16;
    constexpr uint64_t kStripeBytes = 17 * 8;  // 136 B: splits lines
    ir::Addr grid = b.alloc("grid", kStripes * kStripeBytes, 8);
    ir::Addr race_cell = b.alloc("step-stat", 8);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(25 * p.scale, [&] {
        for (uint64_t s = 0; s < kStripes; ++s) {
            ir::Addr stripe = grid + s * kStripeBytes;
            b.lock(s);
            for (int k = 0; k < 3; ++k) {
                b.store(AddrExpr::randomIn(stripe, 17, 8), "cell");
                b.load(AddrExpr::randomIn(stripe, 17, 8), "cell");
            }
            b.unlock(s);
        }
        // Unsynchronized global statistic: the planted race.
        b.store(AddrExpr::absolute(race_cell), "unsync step stat");
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, W);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
