/**
 * @file
 * facesim: physics simulation of a face mesh; long memory-heavy
 * phases (the paper's second-highest TSan overhead, 36.59x) broken
 * into many allocation/IO-terminated regions.
 *
 * Nine planted races: eight ordinary neighbor-partition boundary
 * races touched every timestep in one small boundary region (found),
 * plus one initialization-idiom race on a thread-pool structure
 * initialized by the main thread at startup and read at the end
 * (missed by overlap-based detection) — reproducing the paper's
 * 8-of-9. A per-frame stress-assembly region streams same-set
 * strided stores that overflow the transactional write set
 * (capacity aborts; loop-cut target).
 */

#include "ir/builder.hh"
#include "workloads/apps.hh"
#include "workloads/idioms.hh"

namespace txrace::workloads {

ir::Program
buildFacesim(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;

    constexpr size_t kSites = 8;
    NeighborSites sites(b, "partition-boundaries", kSites, 8);
    InitIdiomSites init(b, "threadpool-struct", 1);
    // Per-worker mesh partitions (bulk work is race-free).
    ir::Addr mesh = b.alloc("face-mesh", (W + 1) * 2048);
    auto mesh_access = [&] {
        AddrExpr e;
        e.base = mesh;
        e.threadStride = 2048;
        e.randomCount = 256;
        e.randomStride = 8;
        return e;
    };
    constexpr uint64_t kCapRows = 11;
    ir::Addr stress = b.alloc("stress-matrix",
                              kCapRows * 4096 + (W + 1) * 64, 64);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(12 * p.scale, [&] {
        // Solver sweeps: eight regions of dense mesh work per frame.
        b.loop(8, [&] {
            b.loop(6, [&] {
                b.load(mesh_access(), "node");
                b.store(mesh_access(), "node");
                b.compute(2);
            });
            b.syscall(1);
        });
        // Boundary-exchange region: writes first, neighbor reads
        // last; one small transaction per frame carrying the races.
        for (size_t s = 0; s < kSites; ++s)
            b.store(sites.writeExpr(s),
                    "boundary write " + std::to_string(s));
        for (int k = 0; k < 4; ++k)
            b.load(mesh_access(), "node");
        for (size_t s = 0; s < kSites; ++s)
            b.load(sites.readExpr(s),
                   "boundary read " + std::to_string(s));
        b.syscall(1);
        // Stress assembly: same-set strided stores (capacity).
        b.loop(kCapRows, [&] {
            AddrExpr e = AddrExpr::perThread(stress, 64);
            e.loopStride = 4096;
            b.store(e, "stress row");
        });
        b.barrier(0, W);
    });
    // Collision-mesh rebuild: irregular unrolled stores (capacity
    // aborts the loop-cut optimization cannot remove).
    ir::Addr rebuild = allocBurst(b, "collision-rebuild");
    b.loop(2 * p.scale, [&] {
        emitCapacityBurst(b, rebuild);
        b.syscall(1);
    });
    b.compute(150);
    for (int k = 0; k < 6; ++k)
        b.load(mesh_access(), "node");
    init.emitLateRead(b);
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, W);
    for (int k = 0; k < 6; ++k)
        b.load(mesh_access(), "node");
    init.emitInit(b);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
