/**
 * @file
 * Reusable race and sharing idioms for the application models.
 */

#ifndef TXRACE_WORKLOADS_IDIOMS_HH
#define TXRACE_WORKLOADS_IDIOMS_HH

#include <cstddef>
#include <string>

#include "ir/builder.hh"
#include "mem/layout.hh"

namespace txrace::workloads {

/**
 * Neighbor-pair race sites: worker t writes its own row slot, worker
 * t+1 reads worker t's row slot, with no synchronization between the
 * two accesses. Each slot yields exactly one distinct static race
 * (the static store/load instruction pair), executed by every
 * adjacent worker pair. Works for any worker count >= 2 (the lowest
 * worker's read hits an unwritten guard row and races with nothing).
 */
class NeighborSites
{
  public:
    /** Reserve @p slots sites, one cache line each per row. */
    NeighborSites(ir::ProgramBuilder &b, const std::string &name,
                  size_t slots, uint32_t max_tid);

    /** Address the executing worker writes for @p slot (own row). */
    ir::AddrExpr writeExpr(size_t slot) const;

    /** Address the executing worker reads for @p slot (the row of
     *  the worker with the next-lower tid). */
    ir::AddrExpr readExpr(size_t slot) const;

    size_t slots() const { return slots_; }

  private:
    ir::Addr writerBase_ = 0;
    uint64_t rowStride_ = 0;
    size_t slots_ = 0;
};

/**
 * Initialization-idiom race (§8.3): the main thread initializes
 * shared state right after spawning the workers — unsynchronized but
 * temporally far from the workers' late reads. A happens-before
 * detector reports it; an overlap-based detector does not.
 *
 * Usage: call allocate() while laying out memory, emitInit() in the
 * main function after the spawns, emitLateRead() near the end of the
 * worker function.
 */
class InitIdiomSites
{
  public:
    InitIdiomSites(ir::ProgramBuilder &b, const std::string &name,
                   size_t count);

    /** Main-thread initializing stores (one per site). */
    void emitInit(ir::ProgramBuilder &b) const;

    /** Worker-thread late reads (one per site). */
    void emitLateRead(ir::ProgramBuilder &b) const;

    size_t count() const { return count_; }

  private:
    ir::Addr base_ = 0;
    size_t count_ = 0;
};

/**
 * Reserve a per-worker accumulator array deliberately packed so that
 * workers' slots share cache lines: the classic false-sharing
 * pattern. HTM-level conflicts without any data race — the fast path
 * fires, the slow path (correctly) stays silent. @p stride controls
 * how many workers land in one 64-byte line (8 = up to eight,
 * 24 = pairs).
 */
ir::Addr allocFalseSharingSlots(ir::ProgramBuilder &b,
                                const std::string &name,
                                uint32_t max_tid, uint64_t stride = 8);

/** AddrExpr for the executing worker's false-sharing slot. */
ir::AddrExpr falseSharingSlot(ir::Addr base, uint64_t stride = 8);

/**
 * Reserve space for an unrolled same-set store burst of @p rows
 * cache lines (4 KiB row stride: every line lands in one L1 set).
 */
ir::Addr allocBurst(ir::ProgramBuilder &b, const std::string &name,
                    uint64_t rows = 12);

/**
 * Emit the burst as straight-line stores. With more rows than the
 * write set's associativity this transaction *always* overflows, and
 * because there is no loop the loop-cut optimization cannot rescue
 * it — modeling the irregular-data-structure capacity aborts that
 * keep the paper's capacity columns nonzero even with ProfLoopcut.
 */
void emitCapacityBurst(ir::ProgramBuilder &b, ir::Addr base,
                       uint64_t rows = 12);

} // namespace txrace::workloads

#endif // TXRACE_WORKLOADS_IDIOMS_HH
