/**
 * @file
 * ferret: content-based image search, a two-stage pipeline with
 * semaphore-backed work queues splitting the workers between
 * segmentation and ranking. One planted race: the ranking stage's
 * unsynchronized update of a global query statistic (found by both
 * tools; it is hit on every item).
 */

#include <algorithm>

#include "ir/builder.hh"
#include "workloads/apps.hh"

namespace txrace::workloads {

ir::Program
buildFerret(const WorkloadParams &p)
{
    using ir::AddrExpr;
    ir::ProgramBuilder b;
    const uint32_t W = p.nWorkers;
    const uint32_t n_a = std::max(1u, W / 2);
    const uint32_t n_b = std::max(1u, W - n_a);
    const uint64_t items = 160 * p.scale;
    // Keep queue counts exactly consumable by each stage.
    const uint64_t per_a = items / n_a;
    const uint64_t per_b = (per_a * n_a) / n_b;

    ir::Addr feats = b.alloc("feature-db", 2048 * 8);
    ir::Addr scratch = b.allocPrivate("scratch", (W + 1) * 512);
    ir::Addr stat = b.alloc("query-stat", 8);

    constexpr uint64_t kQ0 = 0, kQ1 = 1;

    ir::FuncId stage_a = b.beginFunction("segment");
    b.loop(per_a, [&] {
        b.wait(kQ0);
        for (int k = 0; k < 5; ++k)
            b.load(AddrExpr::randomIn(feats, 2048, 8), "feature");
        AddrExpr e = AddrExpr::perThread(scratch, 512);
        b.storePrivate(e);
        b.compute(3);
        b.signal(kQ1);
    });
    b.endFunction();

    ir::FuncId stage_b = b.beginFunction("rank");
    b.loop(per_b / 4, [&] {
        b.loop(4, [&] {
            b.wait(kQ1);
            for (int k = 0; k < 5; ++k)
                b.load(AddrExpr::randomIn(feats, 2048, 8), "feature");
            b.compute(3);
        });
        // Query statistic, updated once per ranked batch, unlocked:
        // the planted race (one static pair).
        b.store(AddrExpr::absolute(stat), "stat write");
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(stage_a, n_a);
    b.spawn(stage_b, n_b);
    b.loop(per_a * n_a, [&] { b.signal(kQ0); });
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace txrace::workloads
