/**
 * @file
 * The hook interface between the interpreter and a detection tool.
 *
 * The interpreter executes application semantics (control flow, sync
 * blocking, costs); an ExecutionPolicy implements what a tool does at
 * each interesting point. core/ provides the policies: Native (no
 * tool), TSan (always-on happens-before checking), TSan+sampling, and
 * the TxRace two-phase runtime in its three loop-cut variants.
 */

#ifndef TXRACE_SIM_POLICY_HH
#define TXRACE_SIM_POLICY_HH

#include <vector>

#include "ir/program.hh"
#include "support/types.hh"

namespace txrace::sim {

class Machine;

/** Tool-side hooks invoked by the Machine. All default to no-ops. */
class ExecutionPolicy
{
  public:
    virtual ~ExecutionPolicy() = default;

    /** The run is about to start; the machine is fully constructed. */
    virtual void onRunStart(Machine &) {}

    /** All threads finished. */
    virtual void onRunEnd(Machine &) {}

    /** Thread @p t is about to execute its first instruction. */
    virtual void onThreadStart(Machine &, Tid) {}

    /** Thread @p t ran off the end of its function. Fires before the
     *  thread is marked finished; the policy must close any open
     *  transaction. */
    virtual void onThreadExit(Machine &, Tid) {}

    /**
     * Called once per scheduling step before the instruction fetch.
     * Returning true consumes the step (used by TxRace for the
     * deferred TxFail write after a conflict abort).
     */
    virtual bool beforeStep(Machine &, Tid) { return false; }

    /** TxBegin instruction. */
    virtual void onTxBegin(Machine &, Tid, const ir::Instruction &) {}

    /** TxEnd instruction. */
    virtual void onTxEnd(Machine &, Tid, const ir::Instruction &) {}

    /** LoopCut instruction (end of an instrumented loop body). */
    virtual void onLoopCut(Machine &, Tid, const ir::Instruction &) {}

    /**
     * A Load/Store with its resolved address. Return false if the
     * access aborted the executing thread's own transaction (the
     * instruction then does not complete; the thread has been rolled
     * back).
     */
    virtual bool
    onMemAccess(Machine &, Tid, const ir::Instruction &, ir::Addr,
                bool /* is_write */)
    {
        return true;
    }

    /**
     * A non-blocking sync effect completed for @p t: lock acquired or
     * released, condvar posted, or a wait satisfied. Barriers and
     * thread lifecycle have dedicated hooks.
     */
    virtual void
    onSyncPerformed(Machine &, Tid, const ir::Instruction &)
    {
    }

    /** @p child was created by @p parent (before child's first step). */
    virtual void onThreadCreated(Machine &, Tid parent, Tid child)
    {
        (void)parent;
        (void)child;
    }

    /** @p joiner observed @p joined's termination. */
    virtual void onThreadJoined(Machine &, Tid joiner, Tid joined)
    {
        (void)joiner;
        (void)joined;
    }

    /** A barrier released; @p participants includes every arriver. */
    virtual void
    onBarrierRelease(Machine &, const std::vector<Tid> &participants)
    {
        (void)participants;
    }

    /**
     * A timer interrupt hit @p t while it was transactional. The
     * machine has already aborted the transaction in the HTM engine
     * (unknown status) — the policy must roll the thread back and
     * decide what to do next.
     */
    virtual void onInterruptAbort(Machine &, Tid) {}

    /**
     * A transient glitch aborted @p t's transaction with only the
     * RETRY bit set (no conflict) — the §4.2 case where retrying in
     * place is expected to succeed. The engine-side abort already
     * happened; the policy rolls back and retries or falls back.
     */
    virtual void onRetryAbort(Machine &, Tid) {}
};

} // namespace txrace::sim

#endif // TXRACE_SIM_POLICY_HH
