#include "sim/machine.hh"

#include "ir/printer.hh"
#include "support/log.hh"

namespace txrace::sim {

namespace {

/** Deterministic per-thread RNG seed derivation. */
uint64_t
threadSeed(uint64_t master, Tid t)
{
    uint64_t s = master ^ (0x9e3779b97f4a7c15ULL * (t + 1));
    return splitmix64(s);
}

/** Fold one scheduler pick into the schedule digest. */
uint64_t
mixHash(uint64_t h, uint64_t step, Tid t)
{
    uint64_t s = h ^ (step + 0x9e3779b97f4a7c15ULL * (t + 1));
    return splitmix64(s);
}

/** runnablePos_ sentinel: thread not in the dense runnable set. */
constexpr uint32_t kNoPos = ~0u;

} // namespace

const char *
runErrorKindName(RunError::Kind kind)
{
    switch (kind) {
      case RunError::Kind::None:
        return "none";
      case RunError::Kind::Deadlock:
        return "deadlock";
      case RunError::Kind::Truncated:
        return "truncated";
      case RunError::Kind::Budget:
        return "budget";
      case RunError::Kind::BadAccess:
        return "bad-access";
    }
    return "?";
}

/**
 * Threaded-code handler bodies. One function per opcode (memory
 * accesses additionally per address shape and direction), resolved
 * once at decode; the quantum loop is then an indirect call per op
 * with no opcode switch. Handlers that constitute forced preemption
 * points set quantumBreak_.
 */
struct ExecHandlers
{
    static void
    nop(Machine &, ThreadContext &ctx, const DecodedOp &)
    {
        ++ctx.pc;
    }

    static void
    compute(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        m.addCost(ctx.tid, op.cost, Bucket::Base);
        ++ctx.pc;
    }

    static void
    syscall(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        m.addCost(ctx.tid, op.cost, Bucket::Base);
        m.tel_.registry.add(m.met_.syscalls);
        ++ctx.pc;
    }

    /**
     * Load/Store, specialized by pre-classified address shape: the
     * generic evaluation's branches are resolved at decode, so each
     * instantiation computes exactly the terms its expression uses.
     * The bounds check is elided for constant shapes (checked at
     * decode; statically out-of-range constants get memBad instead).
     */
    template <ir::AddrShape S, bool W>
    static void
    mem(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        const Tid t = ctx.tid;
        m.addCost(t, op.cost, Bucket::Base);
        ir::Addr addr = op.base;
        if constexpr (S != ir::AddrShape::Constant)
            addr += op.threadStride * t;
        if constexpr (S == ir::AddrShape::LoopIndexed) {
            const LoopFrame &frame =
                ctx.loops[ctx.loops.size() - 1 - op.loopDepth];
            addr += op.loopStride * frame.index;
        }
        if constexpr (S == ir::AddrShape::Randomized) {
            if (op.loopStride != 0) {
                const LoopFrame &frame =
                    ctx.loops[ctx.loops.size() - 1 - op.loopDepth];
                addr += op.loopStride * frame.index;
            }
            addr += op.randomStride * ctx.rng.below(op.randomCount);
        }
        if constexpr (S != ir::AddrShape::Constant) {
            if (m.addrLimit_ != 0 && addr >= m.addrLimit_) {
                m.badAccess(t, addr);
                return;
            }
        }
        // Any in-flight transaction makes memory order observable to
        // conflict detection: end the quantum so transactional phases
        // interleave per access, exactly like per-step scheduling.
        if (m.htm_.inFlightCount() > 0)
            m.quantumBreak_ = true;
        if (m.policy_.onMemAccess(m, t, *op.ins, addr, W)) {
            if constexpr (W) {
                // Stores accumulate into their granule; inside a
                // transaction they go to the speculative buffer.
                uint64_t granule = mem::granuleOf(addr);
                auto it = ctx.txStores.find(granule);
                uint64_t old = it != ctx.txStores.end()
                    ? it->second
                    : m.mem_.load(addr);
                uint64_t value = old + op.arg0 + 1;
                if (m.htm_.inTx(t))
                    ctx.txStores[granule] = value;
                else
                    m.mem_.store(addr, value);
            }
            ++ctx.pc;
        } else {
            // The access capacity/conflict-aborted this thread's own
            // transaction; the context has been rolled back.
            m.quantumBreak_ = true;
        }
    }

    /** Constant address statically outside the address space: raise
     *  the structured BadAccess error if actually executed. */
    static void
    memBad(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        m.addCost(ctx.tid, op.cost, Bucket::Base);
        m.badAccess(ctx.tid, op.base);
    }

    static void
    lockAcquire(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        const Tid t = ctx.tid;
        m.addCost(t, op.cost, Bucket::Base);
        if (m.sync_.lockTryAcquire(t, op.arg0)) {
            m.policy_.onSyncPerformed(m, t, *op.ins);
            ++ctx.pc;
        } else {
            m.sync_.lockEnqueue(t, op.arg0);
            m.makeUnrunnable(ctx, ThreadState::Blocked);
        }
        m.quantumBreak_ = true;
    }

    static void
    lockRelease(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        const Tid t = ctx.tid;
        m.addCost(t, op.cost, Bucket::Base);
        m.policy_.onSyncPerformed(m, t, *op.ins);
        Tid next = m.sync_.lockRelease(t, op.arg0);
        if (next != kNoTid) {
            ThreadContext &nctx = m.contexts_[next];
            m.policy_.onSyncPerformed(m, next,
                                      *nctx.code[nctx.pc].ins);
            m.makeRunnable(nctx);
            ++nctx.pc;
        }
        ++ctx.pc;
        m.quantumBreak_ = true;
    }

    static void
    condSignal(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        const Tid t = ctx.tid;
        m.addCost(t, op.cost, Bucket::Base);
        m.policy_.onSyncPerformed(m, t, *op.ins);
        Tid woken = m.sync_.condSignal(op.arg0);
        if (woken != kNoTid) {
            ThreadContext &wctx = m.contexts_[woken];
            m.policy_.onSyncPerformed(m, woken,
                                      *wctx.code[wctx.pc].ins);
            m.makeRunnable(wctx);
            ++wctx.pc;
        }
        ++ctx.pc;
        m.quantumBreak_ = true;
    }

    static void
    condWait(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        const Tid t = ctx.tid;
        m.addCost(t, op.cost, Bucket::Base);
        if (m.sync_.condTryWait(op.arg0)) {
            m.policy_.onSyncPerformed(m, t, *op.ins);
            ++ctx.pc;
        } else {
            m.sync_.condEnqueue(t, op.arg0);
            m.makeUnrunnable(ctx, ThreadState::Blocked);
        }
        m.quantumBreak_ = true;
    }

    static void
    barrier(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        const Tid t = ctx.tid;
        m.addCost(t, op.cost, Bucket::Base);
        auto released = m.sync_.barrierArrive(t, op.arg0, op.arg1);
        if (released.empty()) {
            m.makeUnrunnable(ctx, ThreadState::Blocked);
        } else {
            m.policy_.onBarrierRelease(m, released);
            for (Tid p : released) {
                ThreadContext &pctx = m.contexts_[p];
                m.makeRunnable(pctx);
                ++pctx.pc;
            }
        }
        m.quantumBreak_ = true;
    }

    static void
    threadCreate(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        const Tid t = ctx.tid;
        m.addCost(t, op.cost, Bucket::Base);
        Tid child = static_cast<Tid>(m.contexts_.size());
        m.contexts_.emplace_back();
        ThreadContext &cctx = m.contexts_.back();
        cctx.tid = child;
        cctx.func = static_cast<ir::FuncId>(op.arg0);
        cctx.rng = Rng(threadSeed(m.cfg_.seed, child));
        m.bindCode(cctx);
        m.spawned_.push_back(child);
        ++m.live_;
        m.enrollRunnable(cctx);
        m.policy_.onThreadCreated(m, t, child);
        m.policy_.onThreadStart(m, child);
        m.tel_.registry.add(m.met_.threadsCreated);
        ++ctx.pc;
        m.quantumBreak_ = true;
    }

    static void
    threadJoin(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        const Tid t = ctx.tid;
        std::vector<Tid> &targets = m.joinScratch_;
        if (m.joinReady(*op.ins, t, targets)) {
            m.addCost(t, op.cost, Bucket::Base);
            for (Tid target : targets)
                m.policy_.onThreadJoined(m, t, target);
            ++ctx.pc;
        } else {
            for (Tid target : targets)
                if (m.contexts_[target].state != ThreadState::Finished)
                    m.joinWaiters_[target].push_back(t);
            m.makeUnrunnable(ctx, ThreadState::Blocked);
        }
        m.quantumBreak_ = true;
    }

    static void
    loopBegin(Machine &, ThreadContext &ctx, const DecodedOp &op)
    {
        uint64_t trips = op.arg0;
        if (op.arg1 > 0)
            trips += ctx.rng.below(op.arg1 + 1);
        if (trips == 0) {
            // Dynamically empty loop: skip past the matching LoopEnd.
            ctx.pc = op.jump;
        } else {
            ctx.loops.push_back(LoopFrame{ctx.pc, 0, trips, 0});
            ++ctx.pc;
        }
    }

    static void
    loopEnd(Machine &, ThreadContext &ctx, const DecodedOp &)
    {
        if (ctx.loops.empty())
            panic("Machine: LoopEnd with empty loop stack");
        LoopFrame &frame = ctx.loops.back();
        ++frame.index;
        if (frame.index < frame.total) {
            ctx.pc = frame.beginPc + 1;
        } else {
            ctx.loops.pop_back();
            ++ctx.pc;
        }
    }

    static void
    txBegin(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        m.policy_.onTxBegin(m, ctx.tid, *op.ins);
        ++ctx.pc;
        m.quantumBreak_ = true;
    }

    static void
    txEnd(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        m.policy_.onTxEnd(m, ctx.tid, *op.ins);
        ++ctx.pc;
        m.quantumBreak_ = true;
    }

    static void
    loopCut(Machine &m, ThreadContext &ctx, const DecodedOp &op)
    {
        m.policy_.onLoopCut(m, ctx.tid, *op.ins);
        ++ctx.pc;
        m.quantumBreak_ = true;
    }
};

ExecFn
resolveHandler(const ir::Instruction &ins, ir::AddrShape shape,
               bool constant_oob)
{
    using H = ExecHandlers;
    switch (ins.op) {
      case ir::OpCode::Nop:
        return &H::nop;
      case ir::OpCode::Compute:
        return &H::compute;
      case ir::OpCode::Syscall:
        return &H::syscall;
      case ir::OpCode::Load:
      case ir::OpCode::Store: {
        if (constant_oob)
            return &H::memBad;
        const bool w = ins.op == ir::OpCode::Store;
        switch (shape) {
          case ir::AddrShape::Constant:
            return w ? &H::mem<ir::AddrShape::Constant, true>
                     : &H::mem<ir::AddrShape::Constant, false>;
          case ir::AddrShape::ThreadStrided:
            return w ? &H::mem<ir::AddrShape::ThreadStrided, true>
                     : &H::mem<ir::AddrShape::ThreadStrided, false>;
          case ir::AddrShape::LoopIndexed:
            return w ? &H::mem<ir::AddrShape::LoopIndexed, true>
                     : &H::mem<ir::AddrShape::LoopIndexed, false>;
          case ir::AddrShape::Randomized:
            return w ? &H::mem<ir::AddrShape::Randomized, true>
                     : &H::mem<ir::AddrShape::Randomized, false>;
        }
        break;
      }
      case ir::OpCode::LockAcquire:
        return &H::lockAcquire;
      case ir::OpCode::LockRelease:
        return &H::lockRelease;
      case ir::OpCode::CondSignal:
        return &H::condSignal;
      case ir::OpCode::CondWait:
        return &H::condWait;
      case ir::OpCode::Barrier:
        return &H::barrier;
      case ir::OpCode::ThreadCreate:
        return &H::threadCreate;
      case ir::OpCode::ThreadJoin:
        return &H::threadJoin;
      case ir::OpCode::LoopBegin:
        return &H::loopBegin;
      case ir::OpCode::LoopEnd:
        return &H::loopEnd;
      case ir::OpCode::TxBegin:
        return &H::txBegin;
      case ir::OpCode::TxEnd:
        return &H::txEnd;
      case ir::OpCode::LoopCut:
        return &H::loopCut;
    }
    panic("resolveHandler: unhandled opcode");
}

Machine::Machine(const ir::Program &prog, const MachineConfig &cfg,
                 ExecutionPolicy &policy)
    : prog_(prog), cfg_(cfg), policy_(policy),
      htm_([&] {
          htm::HtmConfig h = cfg.htm;
          h.maxConcurrentTx = cfg.hwThreads;
          h.seed = cfg.seed ^ 0x7c3a11edULL;
          return h;
      }()),
      det_([&] {
          detector::DetectorConfig d = cfg.det;
          d.seed = cfg.seed ^ 0xdecafbadULL;
          return d;
      }()),
      faults_(cfg.faults), schedRng_(cfg.seed),
      intrRng_(cfg.seed ^ 0x5ca1ab1eULL)
{
    if (!prog_.finalized())
        fatal("Machine: program not finalized");
    if (cfg_.nCores == 0 || cfg_.hwThreads == 0)
        fatal("Machine: need at least one core and hardware thread");

    decoded_ = decodeProgram(prog_, cfg_.cost);
    addrLimit_ = prog_.addrSpaceSize();

    contexts_.emplace_back();
    ThreadContext &main = contexts_.back();
    main.tid = 0;
    main.func = prog_.entry();
    main.rng = Rng(threadSeed(cfg_.seed, 0));
    bindCode(main);
    live_ = 1;
    enrollRunnable(main);
    if (cfg_.recordEvents)
        events_.enable();
    if (cfg_.recordTrace)
        tel_.trace.enable();
    if (cfg_.recordFlight)
        tel_.flight.enable();

    // Intern the machine's hot-path metrics once; step-loop updates
    // are then plain vector indexing (no string map lookups).
    auto &reg = tel_.registry;
    met_.rollbacks = reg.counter("machine.rollbacks");
    met_.interruptAborts = reg.counter("machine.interrupt_aborts");
    met_.retryAborts = reg.counter("machine.retry_aborts");
    met_.syscalls = reg.counter("machine.syscalls");
    met_.threadsCreated = reg.counter("machine.threads_created");
    met_.deadlocks = reg.counter("machine.deadlocks");
    met_.steps = reg.gauge("machine.steps");
    met_.truncated = reg.gauge("machine.truncated");
    met_.txCost = reg.histogram("tx.cost.committed");
    met_.txWasted = reg.histogram("tx.cost.wasted");
}

void
Machine::bindCode(ThreadContext &ctx)
{
    const DecodedFunction &fn = decoded_.funcs[ctx.func];
    ctx.code = fn.data();
    ctx.codeLen = static_cast<uint32_t>(fn.size());
}

ThreadContext &
Machine::context(Tid t)
{
    if (t >= contexts_.size())
        panic("Machine::context: bad tid %u", t);
    return contexts_[t];
}

const ThreadContext &
Machine::context(Tid t) const
{
    if (t >= contexts_.size())
        panic("Machine::context: bad tid %u", t);
    return contexts_[t];
}

void
Machine::addCost(Tid t, uint64_t c, Bucket b)
{
    addCost(t, c, b, phaseOf(t));
}

void
Machine::addCost(Tid t, uint64_t c, Bucket b, telemetry::Phase p)
{
    totalCost_ += c;
    buckets_[static_cast<size_t>(b)] += c;
    tel_.phases.noteCost(t, p, c);
    ThreadContext &ctx = contexts_[t];
    ctx.myCost += c;
    if (b == Bucket::Base && htm_.inTx(t))
        ctx.baseSinceTxBegin += c;
}

void
Machine::commitTx(Tid t)
{
    htm_.commit(t);
    ThreadContext &ctx = contexts_[t];
    for (const auto &[granule, value] : ctx.txStores)
        mem_.store(granule << mem::kGranuleBits, value);
    ctx.txStores.clear();
    tel_.registry.observe(met_.txCost, ctx.baseSinceTxBegin);
}

void
Machine::rollback(Tid t, Bucket reason)
{
    ThreadContext &ctx = contexts_[t];
    if (!ctx.snap.valid)
        panic("Machine::rollback: thread %u has no snapshot", t);
    // Speculative stores die with the transaction.
    ctx.txStores.clear();
    // Reclassify the doomed transaction's application work as abort
    // overhead of the given kind (the region re-executes and pays its
    // base cost again, so total Base stays equal to the native run).
    uint64_t wasted = ctx.baseSinceTxBegin;
    if (wasted > 0) {
        buckets_[static_cast<size_t>(Bucket::Base)] -= wasted;
        buckets_[static_cast<size_t>(reason)] += wasted;
    }
    ctx.baseSinceTxBegin = 0;
    ctx.restoreSnapshot();
    addCost(t, cfg_.cost.rollbackCost, reason);
    tel_.registry.add(met_.rollbacks);
    tel_.registry.observe(met_.txWasted, wasted);
}

uint64_t
Machine::replayWindow(Tid payer,
                      const std::vector<htm::VersionLogEntry> &w)
{
    uint64_t check = cfg_.cost.effectiveCheckCost();
    double stall = faults_.slowPathCostMult();
    if (stall > 1.0)
        check = static_cast<uint64_t>(
            static_cast<double>(check) * stall);
    uint64_t total = cfg_.cost.windowReplaySetupCost +
                     check * w.size();
    addCost(payer, total, Bucket::Conflict);
    for (const htm::VersionLogEntry &e : w)
        det_.replayAccess(e.tid, e.addr, e.site, e.isWrite);
    return total;
}

ir::InstrId
Machine::currentSite(Tid t) const
{
    const ThreadContext &ctx = contexts_[t];
    const auto &body = prog_.function(ctx.func).body;
    return ctx.pc < body.size() ? body[ctx.pc].id : ir::kNoInstr;
}

telemetry::Phase
Machine::phaseOfCtx(const ThreadContext &ctx) const
{
    if (ctx.path == PathMode::Slow)
        return ctx.govForced ? telemetry::Phase::Degraded
                             : telemetry::Phase::Slow;
    if (htm_.inTx(ctx.tid))
        return telemetry::Phase::Fast;
    return telemetry::Phase::Native;
}

telemetry::Phase
Machine::phaseOf(Tid t) const
{
    return phaseOfCtx(contexts_[t]);
}

void
Machine::enrollRunnable(ThreadContext &ctx)
{
    runnablePos_.resize(contexts_.size(), kNoPos);
    ctx.state = ThreadState::Runnable;
    runnablePos_[ctx.tid] = static_cast<uint32_t>(runnable_.size());
    runnable_.push_back(ctx.tid);
}

void
Machine::makeRunnable(ThreadContext &ctx)
{
    if (ctx.state == ThreadState::Runnable)
        return;
    ctx.state = ThreadState::Runnable;
    runnablePos_[ctx.tid] = static_cast<uint32_t>(runnable_.size());
    runnable_.push_back(ctx.tid);
}

void
Machine::makeUnrunnable(ThreadContext &ctx, ThreadState to)
{
    if (ctx.state == ThreadState::Runnable) {
        uint32_t pos = runnablePos_[ctx.tid];
        Tid last = runnable_.back();
        runnable_[pos] = last;
        runnablePos_[last] = pos;
        runnable_.pop_back();
        runnablePos_[ctx.tid] = kNoPos;
    }
    ctx.state = to;
}

Tid
Machine::pickRunnable()
{
    const size_t n = runnable_.size();
    if (n == 0)
        return kNoTid;
    // Skip the RNG draw when the choice is forced (single-thread
    // phases: program prologue/epilogue, solo slow regions).
    return runnable_[n == 1 ? 0 : schedRng_.below(n)];
}

Tid
Machine::pickRunnableScan()
{
    uint32_t runnable = 0;
    for (const auto &ctx : contexts_)
        if (ctx.state == ThreadState::Runnable)
            ++runnable;
    if (runnable == 0)
        return kNoTid;
    uint64_t pick = schedRng_.below(runnable);
    for (const auto &ctx : contexts_) {
        if (ctx.state != ThreadState::Runnable)
            continue;
        if (pick == 0)
            return ctx.tid;
        --pick;
    }
    panic("Machine::pickRunnableScan: inconsistent runnable count");
}

uint32_t
Machine::runnableThreadsScan() const
{
    uint32_t n = 0;
    for (const auto &ctx : contexts_)
        if (ctx.state == ThreadState::Runnable)
            ++n;
    return n;
}

void
Machine::captureUnfinishedThreads()
{
    for (const auto &ctx : contexts_) {
        if (ctx.state == ThreadState::Finished)
            continue;
        const auto &fn = prog_.function(ctx.func);
        std::string where = ctx.pc < fn.body.size()
            ? fn.name + ":" + std::to_string(ctx.pc) + " " +
                  ir::formatInstr(fn.body[ctx.pc])
            : fn.name + ":<end>";
        error_.threads.push_back({ctx.tid, ctx.state, where});
    }
}

void
Machine::reportDeadlock()
{
    warn("deadlock: no runnable threads (%u live)", live_);
    error_.kind = RunError::Kind::Deadlock;
    captureUnfinishedThreads();
    for (const auto &info : error_.threads)
        warn("  thread %u state=%d at %s", info.tid,
             static_cast<int>(info.state), info.where.c_str());
    tel_.registry.add(met_.deadlocks);
    if (events_.enabled())
        events_.record(steps_, 0, "deadlock",
                       strprintf("%u live threads blocked", live_));
}

void
Machine::truncateRun()
{
    // Runaway guard: hand back a truncated result instead of killing
    // the process, so harnesses can inspect it.
    warn("Machine: exceeded %llu steps (livelock?); truncating run",
         static_cast<unsigned long long>(cfg_.maxSteps));
    error_.kind = RunError::Kind::Truncated;
    captureUnfinishedThreads();
    tel_.registry.set(met_.truncated, 1);
    if (events_.enabled())
        events_.record(steps_, 0, "truncated",
                       "maxSteps runaway guard tripped");
}

void
Machine::recordStop()
{
    error_.kind = stopRequest_;
    captureUnfinishedThreads();
    if (events_.enabled())
        events_.record(steps_, 0, "stop-request",
                       runErrorKindName(stopRequest_));
}

void
Machine::badAccess(Tid t, ir::Addr a)
{
    // Structured error instead of process death: campaign and service
    // workers must survive malformed workloads.
    warn("Machine: thread %u access 0x%llx beyond address space "
         "0x%llx",
         t, static_cast<unsigned long long>(a),
         static_cast<unsigned long long>(addrLimit_));
    stopRequest_ = RunError::Kind::BadAccess;
    quantumBreak_ = true;
}

const RunError &
Machine::run()
{
    error_ = RunError{};
    policy_.onRunStart(*this);
    det_.rootThread(0);
    policy_.onThreadStart(*this, 0);
    if (cfg_.stepLoop == StepLoop::Classic) {
        runClassic();
    } else if (!faults_.empty() || cfg_.interruptPerStep > 0.0 ||
               cfg_.retryAbortPerStep > 0.0) {
        runDecoded<true>();
    } else {
        // Hot lane: no fault plan and zero injection rates, so the
        // per-op fault and interrupt machinery compiles out.
        runDecoded<false>();
    }
    error_.stepsExecuted = steps_;
    // Abnormal end: drain every thread's flight window into a capture
    // so the structured error carries its own event context.
    if (error_.kind != RunError::Kind::None &&
        tel_.flight.enabled() &&
        tel_.forensics.size() < telemetry::Telemetry::kMaxForensics) {
        telemetry::ForensicsCapture cap;
        cap.trigger = runErrorKindName(error_.kind);
        cap.step = steps_;
        for (uint32_t tid = 0; tid < tel_.flight.threads(); ++tid)
            if (tel_.flight.offered(tid) > 0)
                cap.threads.push_back(
                    telemetry::drainThread(tel_.flight, tid));
        tel_.forensics.push_back(std::move(cap));
    }
    policy_.onRunEnd(*this);
    tel_.registry.set(met_.steps, steps_);
    tel_.trace.closeAll(steps_);
    // Line-directory telemetry: the directory accumulates plain
    // counters internally (the access path is too hot for even an
    // interned-id update per probe); transfer them into the registry
    // once, here, so --metrics-json shows the engine's behavior.
    if (const htm::LineDirectory *dir = htm_.lineDirectory()) {
        auto &reg = tel_.registry;
        const htm::LineDirStats &ds = dir->stats();
        reg.set(reg.gauge("htm.dir.capacity"), dir->capacity());
        reg.set(reg.gauge("htm.dir.occupied_peak"), ds.occupiedPeak);
        reg.add(reg.counter("htm.dir.epoch_clears"), ds.epochClears);
        reg.add(reg.counter("htm.dir.line_walk_clears"),
                ds.lineWalkClears);
        reg.add(reg.counter("htm.dir.rehashes"), ds.rehashes);
        reg.mergeHistogram(reg.histogram("htm.dir.probe_len"),
                           ds.probeLen);
        // Probe count plus the owned-line filter's skips: together
        // they show how much directory traffic the filter removed.
        reg.add(reg.counter("htm.dir.probes"), ds.probeLen.count());
        reg.add(reg.counter("htm.dir.filter_hit"),
                htm_.counters().filterHits);
    }
    // Version-log telemetry (windowed slow path only): same plain-
    // counter transfer as the directory's.
    if (const htm::VersionLog *vl = htm_.versionLog()) {
        auto &reg = tel_.registry;
        const htm::VersionLogCounters &vc = vl->counters();
        reg.add(reg.counter("htm.vlog.entries"), vc.entries);
        reg.add(reg.counter("htm.vlog.ring_overflows"),
                vc.ringOverflows);
        reg.add(reg.counter("htm.vlog.published"), vc.published);
    }
    // Compatibility export: every registry counter/gauge lands in the
    // string-keyed StatSet under its registered name, so harnesses and
    // determinism tests see the same dump shape as before.
    tel_.registry.exportTo(stats_);
    return error_;
}

/**
 * The decoded step loop. One scheduler pick runs a quantum of up to
 * schedQuantum decoded ops back-to-back; handlers end the quantum
 * early at every point where another thread's progress is observable
 * (sync operations, transaction boundaries, memory accesses while any
 * transaction is in flight, thread lifecycle ops) so detection-
 * relevant interleavings keep per-op granularity. Within a quantum
 * the loop is: bounds check, fault/interrupt lane work (Injected lane
 * only), phase attribution, fetch, one indirect call.
 */
template <bool Injected>
void
Machine::runDecoded()
{
    const uint32_t quantum =
        cfg_.schedQuantum > 0 ? cfg_.schedQuantum : 1;
    while (live_ > 0) {
        Tid t = pickRunnable();
        if (t == kNoTid) {
            reportDeadlock();
            return;
        }
        schedHash_ = mixHash(schedHash_, steps_, t);
        ThreadContext &ctx = contexts_[t];
        uint32_t left = quantum;
        bool first = true;
        quantumBreak_ = false;
        while (true) {
            if (steps_ >= cfg_.maxSteps) {
                truncateRun();
                return;
            }
            ++steps_;
            if constexpr (Injected) {
                // A fault-episode edge is a forced preemption point:
                // its modifiers apply to this op, then re-pick.
                if (!faults_.empty() && advanceFaults())
                    left = 1;
            }
            // Attribute this step to the acting thread's current
            // detection mode (the Figure-10 breakdown). The profiler
            // totals must equal steps executed, so this runs for
            // consumed steps (aborts, beforeStep) too.
            tel_.phases.note(t, phaseOfCtx(ctx));
            if constexpr (Injected) {
                if (htm_.inTx(t) && injectAbort(t))
                    break;  // the abort consumed this step
            }
            if (first) {
                // Policy pre-step hook, once per quantum (documented
                // contract since quantum batching): a true return
                // consumes the step and ends the quantum.
                first = false;
                if (policy_.beforeStep(*this, t))
                    break;
            }
            if (ctx.pc >= ctx.codeLen) {
                finishThread(t);
                break;
            }
            const DecodedOp &op = ctx.code[ctx.pc];
            op.fn(*this, ctx, op);
            if (quantumBreak_ || ctx.state != ThreadState::Runnable ||
                --left == 0 || stopRequest_ != RunError::Kind::None)
                break;
        }
        if (stopRequest_ != RunError::Kind::None) {
            recordStop();
            return;
        }
    }
}

void
Machine::runClassic()
{
    while (live_ > 0) {
        if (steps_ >= cfg_.maxSteps) {
            truncateRun();
            return;
        }
        ++steps_;
        if (!step())
            return;
        if (stopRequest_ != RunError::Kind::None) {
            recordStop();
            return;
        }
    }
}

bool
Machine::advanceFaults()
{
    const auto &transitions = faults_.advance(steps_);
    if (transitions.empty())
        return false;
    bool ways_changed = false;
    for (const fault::FaultTransition &tr : transitions) {
        const fault::FaultEpisode &ep = *tr.episode;
        stats_.add(tr.begin ? "fault.episodes_begun"
                            : "fault.episodes_ended");
        stats_.add(std::string("fault.") + fault::faultKindName(ep.kind)
                   + (tr.begin ? ".begin" : ".end"));
        if (events_.enabled())
            events_.record(steps_, 0,
                           tr.begin ? "fault-begin" : "fault-end",
                           strprintf("%s x%.2g +%.2g param=%llu",
                                     fault::faultKindName(ep.kind),
                                     ep.magnitude, ep.addProb,
                                     static_cast<unsigned long long>(
                                         ep.param)));
        tel_.trace.instant(0, steps_,
                           tr.begin ? "fault-begin" : "fault-end",
                           "fault", fault::faultKindName(ep.kind));
        if (ep.kind == fault::FaultKind::CapacityCliff)
            ways_changed = true;
    }
    if (ways_changed)
        htm_.setWaysPenalty(faults_.capacityWaysPenalty());
    return true;
}

bool
Machine::injectAbort(Tid t)
{
    // Timer-interrupt injection: OS preemption aborts an in-flight
    // transaction with an all-zero (unknown) status, more often when
    // the machine is oversubscribed (paper §8.2, Figure 8). Fault
    // episodes (interrupt storms, retry glitches) modulate the rates.
    double p = cfg_.interruptPerStep;
    if (runnable_.size() > cfg_.nCores)
        p *= cfg_.oversubInterruptFactor;
    p = p * faults_.interruptMult() + faults_.interruptAdd();
    if (intrRng_.chance(p)) {
        htm_.abortTx(t, 0);
        tel_.registry.add(met_.interruptAborts);
        if (tel_.flight.enabled())
            tel_.flight.note(
                t, telemetry::FrKind::TxAbort, steps_,
                currentSite(t),
                static_cast<uint64_t>(
                    telemetry::FrAbort::Interrupt));
        if (events_.enabled())
            events_.record(steps_, t, "interrupt",
                           "unknown abort (preemption)");
        tel_.trace.endSpan(t, telemetry::TraceBuffer::SpanKind::Tx,
                           steps_, "interrupt");
        tel_.trace.instant(t, steps_, "interrupt-abort", "abort");
        policy_.onInterruptAbort(*this, t);
        return true;
    }
    double pr = cfg_.retryAbortPerStep + faults_.retryAdd();
    if (pr > 0.0 && intrRng_.chance(pr)) {
        htm_.abortTx(t, htm::kAbortRetry);
        tel_.registry.add(met_.retryAborts);
        if (tel_.flight.enabled())
            tel_.flight.note(
                t, telemetry::FrKind::TxAbort, steps_,
                currentSite(t),
                static_cast<uint64_t>(telemetry::FrAbort::Retry));
        tel_.trace.endSpan(t, telemetry::TraceBuffer::SpanKind::Tx,
                           steps_, "retry");
        policy_.onRetryAbort(*this, t);
        return true;
    }
    return false;
}

bool
Machine::step()
{
    if (!faults_.empty())
        advanceFaults();

    Tid t = pickRunnableScan();
    if (t == kNoTid) {
        reportDeadlock();
        return false;
    }
    schedHash_ = mixHash(schedHash_, steps_, t);

    tel_.phases.note(t, phaseOf(t));

    if (htm_.inTx(t) && injectAbort(t))
        return true;

    if (policy_.beforeStep(*this, t))
        return true;

    execInstr(t);
    return true;
}

bool
Machine::evalAddr(const ir::AddrExpr &expr, ThreadContext &ctx,
                  ir::Addr &out)
{
    ir::Addr a = expr.base;
    a += expr.threadStride * ctx.tid;
    if (expr.loopStride != 0) {
        if (expr.loopDepth >= ctx.loops.size())
            fatal("Machine: loop-indexed address outside loop "
                  "(depth %u, nesting %zu)", expr.loopDepth,
                  ctx.loops.size());
        const LoopFrame &frame =
            ctx.loops[ctx.loops.size() - 1 - expr.loopDepth];
        a += expr.loopStride * frame.index;
    }
    if (expr.randomCount != 0)
        a += expr.randomStride * ctx.rng.below(expr.randomCount);
    if (addrLimit_ > 0 && a >= addrLimit_) {
        badAccess(ctx.tid, a);
        return false;
    }
    out = a;
    return true;
}

void
Machine::finishThread(Tid t)
{
    ThreadContext &ctx = contexts_[t];
    policy_.onThreadExit(*this, t);
    makeUnrunnable(ctx, ThreadState::Finished);
    --live_;
    wakeJoinWaiters(t);
}

void
Machine::wakeJoinWaiters(Tid finished)
{
    auto it = joinWaiters_.find(finished);
    if (it == joinWaiters_.end())
        return;
    for (Tid w : it->second) {
        if (contexts_[w].state == ThreadState::Blocked)
            makeRunnable(contexts_[w]);
    }
    joinWaiters_.erase(it);
}

bool
Machine::joinReady(const ir::Instruction &ins, Tid t,
                   std::vector<Tid> &targets)
{
    targets.clear();
    if (ins.arg0 == ~0ull) {
        for (Tid s : spawned_)
            if (s != t)
                targets.push_back(s);
    } else {
        if (ins.arg0 >= spawned_.size())
            fatal("Machine: join of spawn index %llu but only %zu "
                  "spawned",
                  static_cast<unsigned long long>(ins.arg0),
                  spawned_.size());
        targets.push_back(spawned_[ins.arg0]);
    }
    for (Tid target : targets)
        if (contexts_[target].state != ThreadState::Finished)
            return false;
    return true;
}

void
Machine::execInstr(Tid t)
{
    ThreadContext &ctx = contexts_[t];
    const auto &body = prog_.function(ctx.func).body;
    if (ctx.pc >= body.size()) {
        finishThread(t);
        return;
    }
    const ir::Instruction &ins = body[ctx.pc];
    const CostModel &cost = cfg_.cost;

    switch (ins.op) {
      case ir::OpCode::Nop:
        ++ctx.pc;
        break;

      case ir::OpCode::Compute:
        addCost(t, ins.arg0, Bucket::Base);
        ++ctx.pc;
        break;

      case ir::OpCode::Syscall:
        addCost(t, cost.syscallCost + ins.arg0, Bucket::Base);
        tel_.registry.add(met_.syscalls);
        ++ctx.pc;
        break;

      case ir::OpCode::Load:
      case ir::OpCode::Store: {
        bool is_write = ins.op == ir::OpCode::Store;
        addCost(t, is_write ? cost.storeCost : cost.loadCost,
                Bucket::Base);
        ir::Addr addr;
        if (!evalAddr(ins.addr, ctx, addr))
            break;  // out of address space: BadAccess stop raised
        if (policy_.onMemAccess(*this, t, ins, addr, is_write)) {
            if (is_write) {
                // Stores accumulate into their granule; inside a
                // transaction they go to the speculative buffer.
                uint64_t granule = mem::granuleOf(addr);
                auto it = ctx.txStores.find(granule);
                uint64_t old = it != ctx.txStores.end()
                    ? it->second
                    : mem_.load(addr);
                uint64_t value = old + ins.arg0 + 1;
                if (htm_.inTx(t))
                    ctx.txStores[granule] = value;
                else
                    mem_.store(addr, value);
            }
            ++ctx.pc;
        }
        // else: the access capacity/conflict-aborted this thread's own
        // transaction; the context has been rolled back.
        break;
      }

      case ir::OpCode::LockAcquire:
        addCost(t, cost.syncCost, Bucket::Base);
        if (sync_.lockTryAcquire(t, ins.arg0)) {
            policy_.onSyncPerformed(*this, t, ins);
            ++ctx.pc;
        } else {
            sync_.lockEnqueue(t, ins.arg0);
            makeUnrunnable(ctx, ThreadState::Blocked);
        }
        break;

      case ir::OpCode::LockRelease: {
        addCost(t, cost.syncCost, Bucket::Base);
        policy_.onSyncPerformed(*this, t, ins);
        Tid next = sync_.lockRelease(t, ins.arg0);
        if (next != kNoTid) {
            ThreadContext &nctx = contexts_[next];
            const auto &nbody = prog_.function(nctx.func).body;
            policy_.onSyncPerformed(*this, next, nbody[nctx.pc]);
            makeRunnable(nctx);
            ++nctx.pc;
        }
        ++ctx.pc;
        break;
      }

      case ir::OpCode::CondSignal: {
        addCost(t, cost.syncCost, Bucket::Base);
        policy_.onSyncPerformed(*this, t, ins);
        Tid woken = sync_.condSignal(ins.arg0);
        if (woken != kNoTid) {
            ThreadContext &wctx = contexts_[woken];
            const auto &wbody = prog_.function(wctx.func).body;
            policy_.onSyncPerformed(*this, woken, wbody[wctx.pc]);
            makeRunnable(wctx);
            ++wctx.pc;
        }
        ++ctx.pc;
        break;
      }

      case ir::OpCode::CondWait:
        addCost(t, cost.syncCost, Bucket::Base);
        if (sync_.condTryWait(ins.arg0)) {
            policy_.onSyncPerformed(*this, t, ins);
            ++ctx.pc;
        } else {
            sync_.condEnqueue(t, ins.arg0);
            makeUnrunnable(ctx, ThreadState::Blocked);
        }
        break;

      case ir::OpCode::Barrier: {
        addCost(t, cost.syncCost, Bucket::Base);
        auto released = sync_.barrierArrive(t, ins.arg0, ins.arg1);
        if (released.empty()) {
            makeUnrunnable(ctx, ThreadState::Blocked);
        } else {
            policy_.onBarrierRelease(*this, released);
            for (Tid p : released) {
                ThreadContext &pctx = contexts_[p];
                makeRunnable(pctx);
                ++pctx.pc;
            }
        }
        break;
      }

      case ir::OpCode::ThreadCreate: {
        addCost(t, cost.threadOpCost, Bucket::Base);
        Tid child = static_cast<Tid>(contexts_.size());
        contexts_.emplace_back();
        ThreadContext &cctx = contexts_.back();
        cctx.tid = child;
        cctx.func = static_cast<ir::FuncId>(ins.arg0);
        cctx.rng = Rng(threadSeed(cfg_.seed, child));
        bindCode(cctx);
        spawned_.push_back(child);
        ++live_;
        enrollRunnable(cctx);
        policy_.onThreadCreated(*this, t, child);
        policy_.onThreadStart(*this, child);
        tel_.registry.add(met_.threadsCreated);
        ++ctx.pc;
        break;
      }

      case ir::OpCode::ThreadJoin: {
        std::vector<Tid> targets;
        if (joinReady(ins, t, targets)) {
            addCost(t, cost.threadOpCost, Bucket::Base);
            for (Tid target : targets)
                policy_.onThreadJoined(*this, t, target);
            ++ctx.pc;
        } else {
            for (Tid target : targets)
                if (contexts_[target].state != ThreadState::Finished)
                    joinWaiters_[target].push_back(t);
            makeUnrunnable(ctx, ThreadState::Blocked);
        }
        break;
      }

      case ir::OpCode::LoopBegin: {
        uint64_t trips = ins.arg0;
        if (ins.arg1 > 0)
            trips += ctx.rng.below(ins.arg1 + 1);
        if (trips == 0) {
            // Dynamically empty loop: skip past the matching LoopEnd.
            ctx.pc = static_cast<uint32_t>(ins.match) + 1;
        } else {
            ctx.loops.push_back(
                LoopFrame{ctx.pc, 0, trips, 0});
            ++ctx.pc;
        }
        break;
      }

      case ir::OpCode::LoopEnd: {
        if (ctx.loops.empty())
            panic("Machine: LoopEnd with empty loop stack");
        LoopFrame &frame = ctx.loops.back();
        ++frame.index;
        if (frame.index < frame.total) {
            ctx.pc = frame.beginPc + 1;
        } else {
            ctx.loops.pop_back();
            ++ctx.pc;
        }
        break;
      }

      case ir::OpCode::TxBegin:
        policy_.onTxBegin(*this, t, ins);
        ++ctx.pc;
        break;

      case ir::OpCode::TxEnd:
        policy_.onTxEnd(*this, t, ins);
        ++ctx.pc;
        break;

      case ir::OpCode::LoopCut:
        policy_.onLoopCut(*this, t, ins);
        ++ctx.pc;
        break;
    }
}

} // namespace txrace::sim
