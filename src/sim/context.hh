/**
 * @file
 * Per-thread execution state, including the snapshot/rollback support
 * that stands in for the hardware's transactional register/memory
 * rollback.
 */

#ifndef TXRACE_SIM_CONTEXT_HH
#define TXRACE_SIM_CONTEXT_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ir/program.hh"
#include "sim/costmodel.hh"
#include "support/rng.hh"
#include "support/types.hh"

namespace txrace::sim {

struct DecodedOp;

/** Scheduling state of a simulated thread. */
enum class ThreadState : uint8_t {
    Runnable,
    Blocked,
    Finished,
};

/** Which detection path the thread is currently on (TxRace modes). */
enum class PathMode : uint8_t {
    Fast,  ///< HTM-monitored (or unmonitored when elided)
    Slow,  ///< software happens-before checking until region end
};

/** One active loop of a thread. */
struct LoopFrame
{
    uint32_t beginPc = 0;   ///< pc of the LoopBegin instruction
    uint64_t index = 0;     ///< current iteration, 0-based
    uint64_t total = 0;     ///< trip count resolved at loop entry
    /** Iterations executed inside the current transaction (loop-cut
     *  bookkeeping; rolled back with the frame on abort, exactly the
     *  property §4.3 exploits). */
    uint64_t itersInTx = 0;
};

/**
 * The rollback image of a thread: control state captured when a
 * transaction begins, restored on abort. Memory needs no image
 * because transactional stores never reach memory in this simulator
 * (the HTM engine's write set is discarded on abort) and the
 * simulator is value-agnostic during detection runs.
 */
struct ContextSnapshot
{
    uint32_t pc = 0;
    std::vector<LoopFrame> loops;
    Rng rng;
    bool valid = false;
};

/** Full per-thread state. */
struct ThreadContext
{
    Tid tid = 0;
    ir::FuncId func = 0;
    uint32_t pc = 0;
    /** Decoded body of func, bound by the machine at thread start so
     *  the step loop fetches ops without a per-op function lookup.
     *  Stable for the thread's lifetime (func never changes). */
    const DecodedOp *code = nullptr;
    uint32_t codeLen = 0;
    std::vector<LoopFrame> loops;
    Rng rng;
    ThreadState state = ThreadState::Runnable;

    /** @name Policy scratch (owned by the active ExecutionPolicy) */
    /** @{ */
    PathMode path = PathMode::Fast;
    /** Reason bucket for the current/pending slow episode. */
    Bucket slowReason = Bucket::Base;
    /** The thread was conflict-aborted and must publish TxFail. */
    bool mustWriteTxFail = false;
    /** Steps the pending TxFail publication is still delayed (fault
     *  injection: TxFail-flag publication delay). */
    uint64_t txFailDelay = 0;
    /** Governor level-3 degradation: regions run untransacted with
     *  sampled software checks instead of full slow-path checking. */
    bool sampleMode = false;
    /** The current slow episode was forced by the governor's
     *  degradation ladder rather than by an abort (phase-profiler
     *  attribution: degraded vs genuine slow-path time). */
    bool govForced = false;
    /** Consecutive retry-aborts of the current region. */
    uint32_t retryCount = 0;
    /** This thread's accumulated virtual cost. */
    uint64_t myCost = 0;
    /** Base-bucket cost accrued since the current tx began. */
    uint64_t baseSinceTxBegin = 0;
    /** Static loop id of the innermost loop-cut loop in the current
     *  tx (capacity attribution for the loop-cut optimizer);
     *  ir::kNoInstr when none. */
    uint32_t lastLoopCutId = ir::kNoInstr;
    /** With conflict-address hints enabled: the line whose conflict
     *  triggered the current slow episode (~0 = no hint, check all). */
    uint64_t slowHintLine = ~0ull;
    /** Windowed slow path: replays already paid by the current
     *  transaction attempt (bounds livelock; past the cap the policy
     *  falls back to a solo slow region). */
    uint32_t windowReplays = 0;
    /** @} */

    /** Speculative store buffer: granule -> value written inside the
     *  current transaction. Applied to memory on commit, discarded on
     *  abort — the software stand-in for the L1's transactional
     *  write buffering. */
    std::unordered_map<uint64_t, uint64_t> txStores;

    ContextSnapshot snap;

    /** Capture control state; @p resume_pc is where re-execution of
     *  the region (after rollback) starts. */
    void
    takeSnapshot(uint32_t resume_pc)
    {
        snap.pc = resume_pc;
        snap.loops = loops;
        snap.rng = rng;
        snap.valid = true;
    }

    /** Restore the snapshot image. Keeps policy scratch counters that
     *  the paper keeps outside transactions (retryCount, cost). */
    void
    restoreSnapshot()
    {
        pc = snap.pc;
        loops = snap.loops;
        rng = snap.rng;
    }
};

} // namespace txrace::sim

#endif // TXRACE_SIM_CONTEXT_HH
