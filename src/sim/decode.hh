/**
 * @file
 * Pre-decoded program representation for the threaded-code step loop.
 *
 * At Machine construction every ir::Instruction is decoded once into a
 * flat, execute-ready DecodedOp: the handler function pointer is
 * resolved (threaded-code dispatch — no opcode switch on the hot
 * path), the cost-model charge is pre-folded, the address expression
 * is pre-classified by shape (so evaluation is branch-light), and the
 * LoopBegin zero-trip jump target is inlined. Decode also validates
 * statically what the old interpreter checked per execution: a
 * loop-indexed address must sit inside at least loopDepth+1 loops, and
 * a constant address must fall inside the program's address space (an
 * out-of-range constant decodes to a trap handler that raises the
 * structured BadAccess run error if it is ever executed).
 *
 * Decode is per-Machine, not per-Program, because the folded charges
 * depend on the machine's CostModel. The DecodedOp keeps a pointer to
 * its source instruction for the policy hooks, which is stable because
 * function bodies never move during a run.
 */

#ifndef TXRACE_SIM_DECODE_HH
#define TXRACE_SIM_DECODE_HH

#include <cstdint>
#include <vector>

#include "ir/program.hh"
#include "sim/costmodel.hh"

namespace txrace::sim {

class Machine;
struct ThreadContext;
struct DecodedOp;

/** Threaded-code handler: executes one decoded op for @p ctx. */
using ExecFn = void (*)(Machine &, ThreadContext &, const DecodedOp &);

/** One execute-ready instruction. */
struct DecodedOp
{
    /** Resolved handler (opcode × address shape × load/store). */
    ExecFn fn = nullptr;
    /** Source instruction (policy hooks take the ir form). */
    const ir::Instruction *ins = nullptr;
    /** Pre-folded base-bucket charge (cost model applied at decode). */
    uint64_t cost = 0;
    uint64_t arg0 = 0;
    uint64_t arg1 = 0;

    /** @name Address expression, flattened */
    /** @{ */
    ir::Addr base = 0;
    uint64_t threadStride = 0;
    uint64_t loopStride = 0;
    uint64_t randomStride = 0;
    uint64_t randomCount = 0;
    uint32_t loopDepth = 0;
    /** @} */

    /** LoopBegin only: pc just past the matching LoopEnd (the
     *  zero-trip jump target, resolved from Instruction::match). */
    uint32_t jump = 0;
};

/** A decoded function body, indexed by pc like the ir body. */
using DecodedFunction = std::vector<DecodedOp>;

/** All functions of a program, decoded. */
struct DecodedProgram
{
    std::vector<DecodedFunction> funcs;
};

/**
 * Resolve the handler for @p ins. Defined in machine.cc next to the
 * handler bodies. @p constant_oob marks a constant-shape memory access
 * whose address is statically outside the program's address space; it
 * resolves to the BadAccess trap handler.
 */
ExecFn resolveHandler(const ir::Instruction &ins, ir::AddrShape shape,
                      bool constant_oob);

/**
 * Decode every function of @p prog under cost model @p cost. The
 * program must be finalized. fatal()s on structurally invalid
 * loop-indexed addresses (the static form of the old per-execution
 * nesting check).
 */
DecodedProgram decodeProgram(const ir::Program &prog,
                             const CostModel &cost);

} // namespace txrace::sim

#endif // TXRACE_SIM_DECODE_HH
