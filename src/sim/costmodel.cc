#include "sim/costmodel.hh"

namespace txrace::sim {

const char *
bucketName(Bucket b)
{
    switch (b) {
      case Bucket::Base:     return "base";
      case Bucket::Txn:      return "xbegin/xend";
      case Bucket::Conflict: return "conflict-aborts";
      case Bucket::Capacity: return "capacity-aborts";
      case Bucket::Unknown:  return "unknown-aborts";
      case Bucket::Check:    return "checks";
      default:               return "<bad-bucket>";
    }
}

} // namespace txrace::sim
