/**
 * @file
 * The simulated multithreaded machine: a seeded-interleaving
 * interpreter for mini-IR programs, with an attached HTM model,
 * happens-before detector, synchronization tables, virtual-time cost
 * accounting, and timer-interrupt injection.
 *
 * One Machine executes one program under one ExecutionPolicy and is
 * then discarded. Runs are a pure function of (program, config,
 * policy), which the determinism tests assert.
 */

#ifndef TXRACE_SIM_MACHINE_HH
#define TXRACE_SIM_MACHINE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "detector/fasttrack.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "mem/memory.hh"
#include "htm/htm.hh"
#include "ir/program.hh"
#include "sim/context.hh"
#include "sim/costmodel.hh"
#include "sim/decode.hh"
#include "sim/eventlog.hh"
#include "sim/policy.hh"
#include "support/rng.hh"
#include "support/stats.hh"
#include "sync/primitives.hh"
#include "telemetry/telemetry.hh"

namespace txrace::sim {

/**
 * Which step-loop implementation run() uses. Decoded is the
 * threaded-code quantum loop over the pre-decoded program. Classic is
 * the pre-decode per-step loop (opcode switch, O(threads) runnable
 * scan, one pick per instruction), retained for one PR as
 * bench_simcore's reference lane and as a differential oracle — the
 * same role the LegacyScan conflict engine served — and slated for
 * removal. Both are seeded-deterministic; their schedules differ.
 */
enum class StepLoop : uint8_t {
    Decoded,
    Classic,
};

/** Machine-level configuration. */
struct MachineConfig
{
    /** Master seed: scheduling, interrupts, per-thread streams. */
    uint64_t seed = 1;
    /** Physical cores (the paper's testbed: quad-core i7-4790). */
    uint32_t nCores = 4;
    /**
     * Hardware threads = max concurrent transactions (8 with
     * hyperthreading on the testbed). Propagated into the HTM config.
     */
    uint32_t hwThreads = 8;
    /** Per-step probability a transactional thread takes an interrupt
     *  (OS context switches etc. — the source of unknown aborts). */
    double interruptPerStep = 1.0 / 20000.0;
    /** Interrupt multiplier once live threads exceed physical cores
     *  (hyperthread contention; drives the paper's 8-thread spike in
     *  unknown aborts, Figure 8). */
    double oversubInterruptFactor = 8.0;
    /** Per-step probability a transactional thread takes a transient
     *  retryable abort (TLB shootdowns and similar glitches that set
     *  the RETRY bit without CONFLICT; rare on real parts). */
    double retryAbortPerStep = 0.0;
    /** Record a structured event timeline (txrace_run --trace). */
    bool recordEvents = false;
    /** Record transaction/slow-path spans and abort instants into the
     *  telemetry trace buffer (txrace_run --trace-json). */
    bool recordTrace = false;
    /** Enable the per-thread flight recorder (forensics captures on
     *  race reports and structured run errors). Observe-only: never
     *  changes scheduling, cost, or detection. No-op in builds made
     *  with -DTXRACE_FLIGHTREC=OFF. */
    bool recordFlight = false;
    /** Hard cap on scheduler steps (runaway guard). Exceeding it ends
     *  the run with RunError::Kind::Truncated, not process death. */
    uint64_t maxSteps = 500'000'000;
    /**
     * Scheduler quantum: how many decoded ops a picked thread may run
     * back-to-back before the scheduler re-picks. Forced preemption
     * points end a quantum early regardless: sync operations,
     * transaction boundaries, any memory access while a transaction
     * is in flight (so transactional phases still interleave per op
     * and conflict-based detection sees the same granularity as
     * per-step scheduling), thread create/join, and fault-episode
     * edges. 1 reproduces per-instruction scheduling. Behaviour-
     * affecting like the seed: runs are deterministic per value, and
     * different values produce different (equally valid) schedules.
     */
    uint32_t schedQuantum = 32;
    /** Step-loop implementation (bench/differential knob; production
     *  front ends never change it). */
    StepLoop stepLoop = StepLoop::Decoded;
    /** Scheduled pathology episodes injected from the scheduler loop
     *  (empty = no injection). Part of the run's identity: identical
     *  (program, config incl. plan, seed) runs are byte-identical. */
    fault::FaultPlan faults;

    CostModel cost;
    htm::HtmConfig htm;
    detector::DetectorConfig det;
};

/** One unfinished thread's state at an abnormal run end. */
struct BlockedThreadInfo
{
    Tid tid = 0;
    ThreadState state = ThreadState::Runnable;
    /** Function name and pc of the instruction it is parked on. */
    std::string where;
};

/**
 * Structured outcome of a run that could not finish normally, carried
 * in the result instead of killing the process — harnesses, the chaos
 * soak test, and production supervisors assert on it.
 */
struct RunError
{
    enum class Kind : uint8_t {
        None,       ///< run completed normally
        Deadlock,   ///< no runnable thread but live_ > 0
        Truncated,  ///< maxSteps runaway guard tripped
        Budget,     ///< monitor overhead budget unsatisfiable
        BadAccess,  ///< access outside the program's address space
    };

    Kind kind = Kind::None;
    /** Scheduler steps actually executed. */
    uint64_t stepsExecuted = 0;
    /** Unfinished threads and what they were blocked on. */
    std::vector<BlockedThreadInfo> threads;

    bool ok() const { return kind == Kind::None; }
    bool truncated() const { return kind == Kind::Truncated; }
};

/** Display name of a run-error kind. */
const char *runErrorKindName(RunError::Kind kind);

/**
 * The machine. Policies receive a reference and use the service
 * accessors (htm(), det(), context(), addCost(), rollback()...).
 */
class Machine
{
  public:
    /** Address every transaction reads at begin and conflict-aborted
     *  threads write: the paper's TxFail flag. Lives below the
     *  builder's allocation floor so no program data shares its line. */
    static constexpr ir::Addr kTxFailAddr = 8;

    Machine(const ir::Program &prog, const MachineConfig &cfg,
            ExecutionPolicy &policy);

    /**
     * Execute until every thread finished, a deadlock is detected, or
     * the maxSteps guard trips. Abnormal ends are reported in the
     * returned RunError (also available via error()) — the process
     * survives so harnesses can inspect the partial result.
     */
    const RunError &run();

    /** Outcome of the last run() (None before/after a clean run). */
    const RunError &error() const { return error_; }

    /** @name Services for policies */
    /** @{ */
    htm::HtmEngine &htm() { return htm_; }
    /** Committed data memory. Stores increment their granule by
     *  (arg0 + 1); transactional stores are buffered per thread and
     *  only reach here on commit. */
    mem::VirtualMemory &memory() { return mem_; }
    const mem::VirtualMemory &memory() const { return mem_; }
    detector::HbDetector &det() { return det_; }
    sync::SyncTables &syncTables() { return sync_; }
    const ir::Program &program() const { return prog_; }
    const MachineConfig &config() const { return cfg_; }
    ThreadContext &context(Tid t);
    const ThreadContext &context(Tid t) const;
    size_t numThreads() const { return contexts_.size(); }
    uint32_t liveThreads() const { return live_; }

    /** Threads currently competing for cores (not blocked/finished);
     *  drives the oversubscription interrupt model. O(1): the machine
     *  maintains a dense runnable set across state transitions. */
    uint32_t runnableThreads() const
    {
        return static_cast<uint32_t>(runnable_.size());
    }

    /** Seeded-deterministic digest of the schedule: every scheduler
     *  pick folds (step, tid) into it. Two same-(program, config,
     *  policy) runs must agree; the golden determinism test asserts
     *  it. Specific to the step-loop lane and quantum, like the
     *  schedule itself. */
    uint64_t scheduleHash() const { return schedHash_; }

    /** Charge @p c cost units to @p t under bucket @p b, attributed
     *  to the phase the profiler would assign @p t right now. */
    void addCost(Tid t, uint64_t c, Bucket b);

    /** Charge @p c cost units to @p t under bucket @p b with an
     *  explicit phase attribution (e.g. governor backoff stalls are
     *  degradation overhead even while the thread reads as fast). */
    void addCost(Tid t, uint64_t c, Bucket b, telemetry::Phase p);

    /**
     * Ask the run loop to end the run after the current step with the
     * given structured error (used by the budget controller when the
     * overhead budget is unsatisfiable even at floor sampling).
     */
    void requestStop(RunError::Kind kind) { stopRequest_ = kind; }

    /**
     * Commit @p t's transaction in the HTM engine and publish its
     * buffered stores to memory. Policies must use this instead of
     * calling htm().commit() directly so speculative state stays
     * consistent.
     */
    void commitTx(Tid t);

    /**
     * Reclassify @p t's base cost accrued since its transaction began
     * as wasted work of kind @p reason, and restore the control
     * snapshot. Does not touch the HTM engine (the caller aborts or
     * has aborted the transaction there).
     */
    void rollback(Tid t, Bucket reason);

    /**
     * Windowed slow path: replay a merged version-log window through
     * the happens-before detector. Each entry is checked as its
     * owning thread (exact, because transactional regions are
     * synchronization-free — no clock moved since the access was
     * logged). The whole replay — flat setup plus one software check
     * per entry, inflated by any active slow-path-stall episode — is
     * charged to @p payer under Bucket::Conflict. Returns the total
     * cost charged.
     */
    uint64_t replayWindow(Tid payer,
                          const std::vector<htm::VersionLogEntry> &w);

    /** Total virtual cost so far. */
    uint64_t totalCost() const { return totalCost_; }

    /** Cost per attribution bucket. */
    const std::array<uint64_t, kNumBuckets> &buckets() const
    {
        return buckets_;
    }

    /** Machine+policy counters. Cold-path/string-keyed compatibility
     *  surface; hot-path counters live in tel().registry and are
     *  exported into this set at the end of run(). */
    StatSet &stats() { return stats_; }
    const StatSet &stats() const { return stats_; }

    /** Telemetry bundle: typed metrics registry, phase profiler,
     *  conflict attribution, trace spans. Policies intern their
     *  metric ids here in onRunStart(). */
    telemetry::Telemetry &tel() { return tel_; }
    const telemetry::Telemetry &tel() const { return tel_; }

    /** Phase the profiler would attribute to @p t right now. */
    telemetry::Phase phaseOf(Tid t) const;

    /** Structured event timeline (empty unless cfg.recordEvents). */
    EventLog &events() { return events_; }
    const EventLog &events() const { return events_; }
    /** Current scheduler step (for event stamping). */
    uint64_t currentStep() const { return steps_; }

    /** Static instruction id thread @p t is parked on right now
     *  (ir::kNoInstr past the end of its function) — abort/forensics
     *  attribution. */
    ir::InstrId currentSite(Tid t) const;

    /** Active fault-injection state (policies consult the modifiers
     *  that apply to them: TxFail delay, slow-path stall). */
    const fault::FaultInjector &faults() const { return faults_; }
    /** @} */

  private:
    /** Threaded-code handler bodies (defined in machine.cc). */
    friend struct ExecHandlers;

    /** Decoded quantum loop; Injected selects the lane that carries
     *  the fault/interrupt machinery. Runs until the program ends or
     *  error_ is filled. */
    template <bool Injected> void runDecoded();
    /** Classic per-step loop (see StepLoop::Classic). */
    void runClassic();
    /** Classic lane: one scheduler step; false = deadlock. */
    bool step();
    /** Classic lane: switch dispatch of one instruction. */
    void execInstr(Tid t);
    /** Evaluate an address expression; false = out of address space
     *  (badAccess() raised, instruction incomplete). */
    bool evalAddr(const ir::AddrExpr &expr, ThreadContext &ctx,
                  ir::Addr &out);
    /** In-transaction interrupt/retry injection for one op; true =
     *  an abort was delivered (the step is consumed). */
    bool injectAbort(Tid t);
    /** Raise the structured BadAccess stop for an access to @p a. */
    void badAccess(Tid t, ir::Addr a);
    /** Record the Truncated run error (maxSteps guard). */
    void truncateRun();
    /** Record a pending requestStop() as the run error. */
    void recordStop();
    /** Point @p ctx at the decoded body of its function. */
    void bindCode(ThreadContext &ctx);
    void finishThread(Tid t);
    void wakeJoinWaiters(Tid finished);
    /** Add a brand-new thread to the runnable set. */
    void enrollRunnable(ThreadContext &ctx);
    /** Blocked -> Runnable (no-op when already runnable). */
    void makeRunnable(ThreadContext &ctx);
    /** Runnable -> @p to, dropping the dense-set entry (swap-remove). */
    void makeUnrunnable(ThreadContext &ctx, ThreadState to);
    Tid pickRunnable();
    /** Classic lane: the original O(threads) scan pick. */
    Tid pickRunnableScan();
    /** Classic lane: the original O(threads) runnable count. */
    uint32_t runnableThreadsScan() const;
    void reportDeadlock();
    /** Apply fault-plan transitions due at the current step; true =
     *  an episode edge was crossed (forced preemption point). */
    bool advanceFaults();
    /** Fill error_.threads with every unfinished thread's state. */
    void captureUnfinishedThreads();
    telemetry::Phase phaseOfCtx(const ThreadContext &ctx) const;

    /** Resolve a ThreadJoin target list; returns true when all
     *  targets are finished (join completes). */
    bool joinReady(const ir::Instruction &ins, Tid t,
                   std::vector<Tid> &targets);

    const ir::Program &prog_;
    MachineConfig cfg_;
    ExecutionPolicy &policy_;

    htm::HtmEngine htm_;
    detector::HbDetector det_;
    sync::SyncTables sync_;
    mem::VirtualMemory mem_;
    fault::FaultInjector faults_;

    /** Program decoded under this machine's cost model. */
    DecodedProgram decoded_;
    /** End of the simulated address space (cached addrSpaceSize). */
    ir::Addr addrLimit_ = 0;

    /** deque: reference stability across ThreadCreate growth. */
    std::deque<ThreadContext> contexts_;
    std::vector<Tid> spawned_;  ///< spawn-order list (join indexing)
    std::unordered_map<Tid, std::vector<Tid>> joinWaiters_;

    /** Dense runnable set: tids in arbitrary order, swap-removed on
     *  block/finish. runnablePos_[tid] is the tid's index (kNoPos
     *  when absent). Every ThreadState transition goes through the
     *  makeRunnable/makeUnrunnable/enroll helpers so the set is
     *  always exact. */
    std::vector<Tid> runnable_;
    std::vector<uint32_t> runnablePos_;
    /** Set by handlers at forced preemption points (sync ops, tx
     *  boundaries, contended memory ops): ends the current quantum. */
    bool quantumBreak_ = false;
    /** Join-target scratch (avoids a per-join allocation). */
    std::vector<Tid> joinScratch_;
    uint64_t schedHash_ = 0x9e3779b97f4a7c15ULL;

    Rng schedRng_;
    Rng intrRng_;
    uint32_t live_ = 0;
    uint64_t steps_ = 0;
    uint64_t totalCost_ = 0;
    std::array<uint64_t, kNumBuckets> buckets_{};
    StatSet stats_;
    EventLog events_;
    RunError error_;
    RunError::Kind stopRequest_ = RunError::Kind::None;

    telemetry::Telemetry tel_;
    /** Pre-interned ids of the machine's own hot-path metrics. */
    struct MachineMetrics
    {
        telemetry::MetricId rollbacks;
        telemetry::MetricId interruptAborts;
        telemetry::MetricId retryAborts;
        telemetry::MetricId syscalls;
        telemetry::MetricId threadsCreated;
        telemetry::MetricId deadlocks;
        telemetry::MetricId steps;      ///< gauge
        telemetry::MetricId truncated;  ///< gauge
        telemetry::MetricId txCost;     ///< histogram: base cost/commit
        telemetry::MetricId txWasted;   ///< histogram: base cost/abort
    };
    MachineMetrics met_;
};

} // namespace txrace::sim

#endif // TXRACE_SIM_MACHINE_HH
