/**
 * @file
 * Structured execution-event log: the observability surface for
 * debugging detection runs. When enabled, the machine and the active
 * policy append one entry per interesting event (transaction begin /
 * commit / abort with its cause, path transitions, TxFail writes,
 * loop cuts, race reports), each stamped with the scheduler step and
 * thread. `txrace_run --trace` prints the timeline.
 */

#ifndef TXRACE_SIM_EVENTLOG_HH
#define TXRACE_SIM_EVENTLOG_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "support/types.hh"

namespace txrace::sim {

/** One logged event. */
struct Event
{
    uint64_t step;     ///< scheduler step at which it happened
    Tid tid;           ///< acting thread
    std::string kind;  ///< short tag, e.g. "commit", "conflict-abort"
    std::string detail;
};

/** Bounded in-memory event collector. Disabled by default. */
class EventLog
{
  public:
    /** Hard cap; recording stops (with a final marker) beyond it. */
    static constexpr size_t kMaxEvents = 200'000;

    /** Enable recording. */
    void enable() { enabled_ = true; }

    /** True if record() will store anything. */
    bool enabled() const { return enabled_; }

    /** Append an event (no-op when disabled or full). */
    void
    record(uint64_t step, Tid tid, std::string kind,
           std::string detail = "")
    {
        if (!enabled_)
            return;
        if (events_.size() >= kMaxEvents) {
            if (!truncated_) {
                truncated_ = true;
                events_.push_back(
                    {step, tid, "truncated", "event cap reached"});
            }
            return;
        }
        events_.push_back(
            {step, tid, std::move(kind), std::move(detail)});
    }

    const std::vector<Event> &events() const { return events_; }

    /** Pretty-print up to @p limit events (0 = all). */
    void
    print(std::ostream &os, size_t limit = 0) const
    {
        size_t n = limit == 0 ? events_.size()
                              : std::min(limit, events_.size());
        for (size_t i = 0; i < n; ++i) {
            const Event &e = events_[i];
            os << "[" << e.step << "] t" << e.tid << " " << e.kind;
            if (!e.detail.empty())
                os << ": " << e.detail;
            os << "\n";
        }
        if (n < events_.size())
            os << "... (" << events_.size() - n << " more)\n";
    }

  private:
    bool enabled_ = false;
    bool truncated_ = false;
    std::vector<Event> events_;
};

} // namespace txrace::sim

#endif // TXRACE_SIM_EVENTLOG_HH
