/**
 * @file
 * Structured execution-event log: the observability surface for
 * debugging detection runs. When enabled, the machine and the active
 * policy append one entry per interesting event (transaction begin /
 * commit / abort with its cause, path transitions, TxFail writes,
 * loop cuts, race reports), each stamped with the scheduler step and
 * thread. `txrace_run --trace` prints the timeline.
 */

#ifndef TXRACE_SIM_EVENTLOG_HH
#define TXRACE_SIM_EVENTLOG_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "support/types.hh"

namespace txrace::sim {

/** One logged event. */
struct Event
{
    uint64_t step;     ///< scheduler step at which it happened
    Tid tid;           ///< acting thread
    std::string kind;  ///< short tag, e.g. "commit", "conflict-abort"
    std::string detail;
};

/** Bounded in-memory event collector. Disabled by default. */
class EventLog
{
  public:
    /** Hard cap; recording stops (with a final marker) beyond it. */
    static constexpr size_t kMaxEvents = 200'000;

    /** Enable recording. */
    void enable() { enabled_ = true; }

    /** True if record() will store anything. */
    bool enabled() const { return enabled_; }

    /** True if record() will actually store a new event right now.
     *  Call sites use this to skip building string arguments when the
     *  log is disabled or already at capacity. */
    bool accepting() const
    {
        return enabled_ && events_.size() < kMaxEvents;
    }

    /**
     * Append an event. When the log is full, the event is counted as
     * dropped (the final "truncated" marker reports the total) instead
     * of silently vanishing. Note the string arguments are constructed
     * by the caller even then — hot call sites guard on enabled() /
     * accepting() first.
     */
    void
    record(uint64_t step, Tid tid, std::string kind,
           std::string detail = "")
    {
        if (!enabled_)
            return;
        if (events_.size() >= kMaxEvents) {
            if (!truncated_) {
                truncated_ = true;
                truncStep_ = step;
                truncTid_ = tid;
            }
            ++dropped_;
            return;
        }
        events_.push_back(
            {step, tid, std::move(kind), std::move(detail)});
    }

    const std::vector<Event> &events() const { return events_; }

    /** Events rejected because the cap was reached. */
    uint64_t dropped() const { return dropped_; }

    /** High-water mark: events ever offered (stored + dropped). The
     *  log is append-only, so stored never shrinks; this is the demand
     *  the cap was sized against — exported in the metrics JSON so
     *  ring/log capacities can be tuned from data rather than guessed. */
    uint64_t highWater() const { return events_.size() + dropped_; }

    /** Pretty-print up to @p limit events (0 = all). */
    void
    print(std::ostream &os, size_t limit = 0) const
    {
        size_t n = limit == 0 ? events_.size()
                              : std::min(limit, events_.size());
        for (size_t i = 0; i < n; ++i) {
            const Event &e = events_[i];
            os << "[" << e.step << "] t" << e.tid << " " << e.kind;
            if (!e.detail.empty())
                os << ": " << e.detail;
            os << "\n";
        }
        if (n < events_.size())
            os << "... (" << events_.size() - n << " more)\n";
        if (truncated_)
            os << "[" << truncStep_ << "] t" << truncTid_
               << " truncated: event cap reached, " << dropped_
               << " event(s) dropped\n";
    }

  private:
    bool enabled_ = false;
    bool truncated_ = false;
    uint64_t dropped_ = 0;
    uint64_t truncStep_ = 0;
    Tid truncTid_ = 0;
    std::vector<Event> events_;
};

} // namespace txrace::sim

#endif // TXRACE_SIM_EVENTLOG_HH
