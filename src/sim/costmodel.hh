/**
 * @file
 * Virtual-time cost model.
 *
 * Every experiment in the paper reports *relative* runtime overhead
 * (instrumented time / native time). The simulator reproduces that by
 * charging each executed operation a virtual cost; the tools under
 * study add their own costs on top (transaction begin/end, shadow
 * checks, rollbacks). Absolute values are arbitrary units; only the
 * ratios are meaningful, which is also all the paper claims.
 */

#ifndef TXRACE_SIM_COSTMODEL_HH
#define TXRACE_SIM_COSTMODEL_HH

#include <cstddef>
#include <cstdint>

namespace txrace::sim {

/** Per-operation virtual-time costs (arbitrary units). */
struct CostModel
{
    /** @name Application costs (accrue in every run mode) */
    /** @{ */
    uint64_t loadCost = 1;
    uint64_t storeCost = 1;
    uint64_t syncCost = 12;      ///< lock/unlock/signal/wait/barrier
    uint64_t syscallCost = 6;    ///< added to the instruction's own cost
    uint64_t threadOpCost = 60;  ///< create/join
    /** @} */

    /** @name Tool costs */
    /** @{ */
    /** xbegin plus the instrumented TxFail read (fast path). */
    uint64_t txBeginCost = 20;
    /** xend. */
    uint64_t txEndCost = 14;
    /** Fast-path per-access hook (the hook body does nothing). */
    uint64_t fastHookCost = 0;
    /** Happens-before tracking of one sync op (runs on both paths). */
    uint64_t syncTrackCost = 4;
    /**
     * Software shadow check per instrumented access (slow path and
     * the TSan baseline). Scaled by checkScale.
     */
    uint64_t checkCost = 9;
    /**
     * Application-specific multiplier on checkCost modeling shadow
     * contention / locality effects — this is what makes TSan's
     * overhead vary by two orders of magnitude across the paper's
     * applications (1.85x for blackscholes vs 1195x for vips).
     */
    double checkScale = 1.0;
    /** Flat penalty for processing one transactional abort. */
    uint64_t rollbackCost = 30;
    /**
     * Flat setup cost of one windowed replay: merging the victim and
     * requester version logs and priming the detector (the per-entry
     * replay checks are charged at effectiveCheckCost on top).
     */
    uint64_t windowReplaySetupCost = 18;
    /** @} */

    /** Effective per-access software check cost. */
    uint64_t
    effectiveCheckCost() const
    {
        double c = static_cast<double>(checkCost) * checkScale;
        return c < 1.0 ? 1 : static_cast<uint64_t>(c);
    }
};

/**
 * Cost-attribution buckets, matching the paper's Figure 7 overhead
 * breakdown. Base must equal the native run's total when the executed
 * work is identical; everything else is tool overhead.
 */
enum class Bucket : uint8_t {
    Base,      ///< application work (what the native run also pays)
    Txn,       ///< xbegin/xend + fast-path hooks + HB sync tracking
    Conflict,  ///< slow-path episodes + wasted work due to conflicts
    Capacity,  ///< ditto, due to capacity aborts
    Unknown,   ///< ditto, due to unknown aborts
    Check,     ///< software checks in TSan / TSan+sampling modes
    NumBuckets,
};

constexpr size_t kNumBuckets =
    static_cast<size_t>(Bucket::NumBuckets);

/** Display name of a bucket. */
const char *bucketName(Bucket b);

} // namespace txrace::sim

#endif // TXRACE_SIM_COSTMODEL_HH
