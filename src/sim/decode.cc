#include "sim/decode.hh"

#include "support/log.hh"

namespace txrace::sim {

namespace {

/** Base-bucket charge the interpreter used to compute per execution. */
uint64_t
staticCost(const ir::Instruction &ins, const CostModel &cost)
{
    switch (ins.op) {
      case ir::OpCode::Compute:
        return ins.arg0;
      case ir::OpCode::Syscall:
        return cost.syscallCost + ins.arg0;
      case ir::OpCode::Load:
        return cost.loadCost;
      case ir::OpCode::Store:
        return cost.storeCost;
      case ir::OpCode::LockAcquire:
      case ir::OpCode::LockRelease:
      case ir::OpCode::CondSignal:
      case ir::OpCode::CondWait:
      case ir::OpCode::Barrier:
        return cost.syncCost;
      case ir::OpCode::ThreadCreate:
      case ir::OpCode::ThreadJoin:
        return cost.threadOpCost;
      case ir::OpCode::Nop:
      case ir::OpCode::LoopBegin:
      case ir::OpCode::LoopEnd:
      case ir::OpCode::TxBegin:
      case ir::OpCode::TxEnd:
      case ir::OpCode::LoopCut:
        return 0;
    }
    return 0;
}

} // namespace

DecodedProgram
decodeProgram(const ir::Program &prog, const CostModel &cost)
{
    if (!prog.finalized())
        fatal("decodeProgram: program not finalized");
    DecodedProgram out;
    out.funcs.resize(prog.numFunctions());
    for (ir::FuncId f = 0; f < prog.numFunctions(); ++f) {
        const auto &body = prog.function(f).body;
        DecodedFunction &ops = out.funcs[f];
        ops.reserve(body.size());
        // Static loop-nesting depth at each pc. Loops are structural
        // (LoopBegin/LoopEnd strictly nest within a function), so the
        // dynamic nesting a mem op sees always equals this.
        uint32_t depth = 0;
        for (const ir::Instruction &ins : body) {
            if (ins.op == ir::OpCode::LoopEnd) {
                if (depth == 0)
                    fatal("decodeProgram: unmatched LoopEnd in %s",
                          prog.function(f).name.c_str());
                --depth;
            }
            DecodedOp op;
            op.ins = &ins;
            op.cost = staticCost(ins, cost);
            op.arg0 = ins.arg0;
            op.arg1 = ins.arg1;
            ir::AddrShape shape = ins.addr.shape();
            bool constant_oob = false;
            bool is_mem = ins.op == ir::OpCode::Load ||
                          ins.op == ir::OpCode::Store;
            if (is_mem) {
                op.base = ins.addr.base;
                op.threadStride = ins.addr.threadStride;
                op.loopStride = ins.addr.loopStride;
                op.randomStride = ins.addr.randomStride;
                op.randomCount = ins.addr.randomCount;
                op.loopDepth = ins.addr.loopDepth;
                // The old interpreter checked nesting on every
                // execution; decode proves it once.
                if (ins.addr.loopStride != 0 &&
                    ins.addr.loopDepth >= depth)
                    fatal("decodeProgram: loop-indexed address outside "
                          "loop (depth %u, nesting %u)",
                          ins.addr.loopDepth, depth);
                constant_oob = shape == ir::AddrShape::Constant &&
                               prog.addrSpaceSize() > 0 &&
                               ins.addr.base >= prog.addrSpaceSize();
            }
            if (ins.op == ir::OpCode::LoopBegin) {
                op.jump = static_cast<uint32_t>(ins.match) + 1;
                ++depth;
            }
            op.fn = resolveHandler(ins, shape, constant_oob);
            ops.push_back(op);
        }
    }
    return out;
}

} // namespace txrace::sim
