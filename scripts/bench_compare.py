#!/usr/bin/env python3
"""Gate bench_micro results: fast-path speedup and baseline regression.

Two independent checks over google-benchmark JSON output, plus an
optional monitor-mode budget-compliance gate over txrace_run
--metrics-json output (--monitor-metrics):

1. Same-run ratio gate (always on): --ratio-fast must beat
   --ratio-slow by at least --min-ratio. Both numbers come from the
   same process on the same machine, so this gate is immune to
   host-speed differences — it checks the *shape* of the performance,
   not absolute throughput. The default pair holds the owned-line
   filter strictly faster than the unfiltered probe path on a
   line-reuse-heavy stream; CI also runs an elision pair (end-to-end
   elide-on vs elide-off) against BENCH_elision.json.

2. Baseline regression gate (--baseline FILE): every benchmark present
   in both files is compared after normalizing by the --calibration
   benchmark measured in the same file. Normalizing cancels host speed
   (CI runners and dev machines differ by integer factors), so what is
   compared is each benchmark's cost relative to the calibration
   anchor. A normalized slowdown beyond --max-regress fails.

3. Monitor budget gate (--monitor-metrics FILE): the file is a
   txrace_run --monitor --metrics-json dump; every complete window's
   detection overhead must stay within the hard allowance
   (budget_pct / 100 * window_base) and never be flagged hard_over.
   --budget-pct overrides the percentage recorded in the file (use it
   to pin the gate to the percentage CI asked for).

4. Profile sanity gate (--profile-metrics FILE): the file is a
   txrace_run/txrace_hunt --profile-out dump; it must carry the
   txrace-profile-v1 schema, at least one app entry, and only
   non-negative integer counters (the byte-determinism contract is
   checked by `cmp` in CI; this gate checks the content contract).

5. Simulator core gate (--simcore FILE): the file is bench_simcore
   --json output (google-benchmark schema, items/sec = scheduler
   steps/sec). Holds the decoded step loop's same-run speedup over
   the classic interpreter lane: >= 2x on the compute-bound probe
   (the quantum-batching/threaded-dispatch headline) and no
   regression (>= 1.2x) on the sync-heavy and tx-heavy probes. With
   --simcore-baseline, every probe is also regressed against the
   committed BENCH_simcore.json, normalized by the classic compute
   lane (a pure interpreter loop, so a stable host-speed anchor).

Usage:
  bench_compare.py [CURRENT.json] [--baseline BASELINE.json]
                   [--ratio-fast NAME] [--ratio-slow NAME]
                   [--calibration NAME]
                   [--min-ratio 1.05] [--max-regress 0.25] [--summary]
                   [--monitor-metrics METRICS.json] [--budget-pct N]
                   [--profile-metrics PROFILE.json]
                   [--simcore SIMCORE.json]
                   [--simcore-baseline BENCH_simcore.json]

Exit status 0 when all gates pass, 1 otherwise.
"""

import argparse
import json
import sys

DEFAULT_RATIO_FAST = "BM_HtmFilterReuse/8"
DEFAULT_RATIO_SLOW = "BM_HtmNoFilterReuse/8"
DEFAULT_CALIBRATION = "BM_HtmDirConflictFree/1"


def load_items_per_second(path):
    """Map benchmark name -> items_per_second.

    Prefers median aggregates when repetitions were used; otherwise
    averages plain iteration entries of the same name.
    """
    with open(path) as f:
        data = json.load(f)
    medians = {}
    plain = {}
    for b in data.get("benchmarks", []):
        ips = b.get("items_per_second")
        if ips is None:
            continue
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") == "median":
                medians[b["run_name"]] = ips
        else:
            name = b.get("run_name", b["name"])
            plain.setdefault(name, []).append(ips)
    out = {name: sum(v) / len(v) for name, v in plain.items()}
    out.update(medians)
    return out


def check_ratio(cur, fast_name, slow_name, min_ratio):
    fast = cur.get(fast_name)
    slow = cur.get(slow_name)
    if fast is None or slow is None:
        print(f"ratio gate: SKIPPED ({fast_name} or {slow_name} "
              "not in results)")
        return True
    ratio = fast / slow
    ok = ratio >= min_ratio
    print(f"ratio gate: {fast_name} {fast / 1e6:.1f} M/s vs "
          f"{slow_name} {slow / 1e6:.1f} M/s = {ratio:.2f}x "
          f"(need >= {min_ratio:.2f}x) -> "
          f"{'ok' if ok else 'FAIL'}")
    return ok


def check_baseline(cur, base, calibration, max_regress):
    cal_cur = cur.get(calibration)
    cal_base = base.get(calibration)
    if not cal_cur or not cal_base:
        print(f"baseline gate: FAIL (calibration benchmark "
              f"{calibration} missing)")
        return False
    ok = True
    shared = sorted(set(cur) & set(base) - {calibration})
    if not shared:
        print("baseline gate: FAIL (no shared benchmarks)")
        return False
    for name in shared:
        norm_cur = cur[name] / cal_cur
        norm_base = base[name] / cal_base
        change = norm_cur / norm_base - 1.0
        flag = "ok"
        if change < -max_regress:
            flag = "FAIL"
            ok = False
        print(f"baseline gate: {name}: normalized {norm_base:.3f} -> "
              f"{norm_cur:.3f} ({change:+.1%}) {flag}")
    return ok


def check_monitor(path, budget_pct):
    """Every complete window of a --monitor run held the hard budget."""
    with open(path) as f:
        data = json.load(f)
    mon = data.get("monitor")
    if not mon:
        print(f"monitor gate: FAIL (no monitor section in {path}; "
              "was the run made with --monitor?)")
        return False
    pct = budget_pct if budget_pct is not None else mon["budget_pct"]
    if budget_pct is not None and mon["budget_pct"] != budget_pct:
        print(f"monitor gate: FAIL (run used --budget-pct="
              f"{mon['budget_pct']}, expected {budget_pct})")
        return False
    windows = mon.get("windows", [])
    if not windows:
        print("monitor gate: FAIL (no complete windows; run too short "
              "for the window base)")
        return False
    allowed = int(pct / 100.0 * mon["window_base"])
    worst = max(w["overhead"] for w in windows)
    over = [i for i, w in enumerate(windows)
            if w["overhead"] > allowed or w["hard_over"]]
    refused = sum(1 for w in windows if w["refused"])
    ok = not over
    print(f"monitor gate: {len(windows)} windows at {pct}% "
          f"(allowed {allowed}/window), worst {worst}, "
          f"{refused} refused, {len(over)} over -> "
          f"{'ok' if ok else 'FAIL ' + str(over[:10])}")
    return ok


PROFILE_APP_COUNTERS = (
    "runs", "filter_hits", "tx_begins", "tx_committed", "slow_regions",
    "window_replays", "window_fallbacks",
    "monitor_site_cuts", "monitor_site_probes", "monitor_gated_checks",
    "monitor_sampled_skips",
)
PROFILE_SITE_COUNTERS = (
    "conflict_aborts", "capacity_aborts", "other_aborts",
    "slow_checks", "slow_cost", "window_replays", "monitor_shift_max",
)


def check_profile(path):
    """A --profile-out dump is well-formed txrace-profile-v1."""
    with open(path) as f:
        data = json.load(f)
    if data.get("schema") != "txrace-profile-v1":
        print(f"profile gate: FAIL ({path}: schema is "
              f"{data.get('schema')!r}, expected txrace-profile-v1)")
        return False
    apps = data.get("apps")
    if not isinstance(apps, dict) or not apps:
        print(f"profile gate: FAIL ({path}: no apps recorded)")
        return False
    sites = 0
    for app, entry in apps.items():
        for key in PROFILE_APP_COUNTERS:
            v = entry.get(key)
            if not isinstance(v, int) or v < 0:
                print(f"profile gate: FAIL ({app}.{key} = {v!r}, "
                      "expected non-negative integer)")
                return False
        if entry["runs"] == 0:
            print(f"profile gate: FAIL ({app}: zero runs)")
            return False
        if entry["tx_committed"] > entry["tx_begins"]:
            print(f"profile gate: FAIL ({app}: tx_committed "
                  f"{entry['tx_committed']} > tx_begins "
                  f"{entry['tx_begins']})")
            return False
        for site, counters in entry.get("sites", {}).items():
            sites += 1
            for key in PROFILE_SITE_COUNTERS:
                v = counters.get(key)
                if not isinstance(v, int) or v < 0:
                    print(f"profile gate: FAIL ({app} site {site} "
                          f"{key} = {v!r})")
                    return False
    print(f"profile gate: {len(apps)} app(s), {sites} site(s), "
          f"{sum(e['runs'] for e in apps.values())} run(s) -> ok")
    return True


# (probe, decoded benchmark, classic benchmark, min decoded/classic)
SIMCORE_PAIRS = (
    ("compute", "BM_SimComputeDecoded", "BM_SimComputeClassic", 2.0),
    ("sync", "BM_SimSyncDecoded", "BM_SimSyncClassic", 1.2),
    ("tx", "BM_SimTxDecoded", "BM_SimTxClassic", 1.2),
)
SIMCORE_CALIBRATION = "BM_SimComputeClassic"


def check_simcore(path, baseline_path, max_regress):
    """Decoded-vs-classic step-loop gates over bench_simcore output."""
    cur = load_items_per_second(path)
    ok = True
    for probe, fast, slow, min_ratio in SIMCORE_PAIRS:
        if fast not in cur or slow not in cur:
            print(f"simcore gate: FAIL ({probe}: {fast} or {slow} "
                  f"missing from {path})")
            ok = False
            continue
        ratio = cur[fast] / cur[slow]
        good = ratio >= min_ratio
        print(f"simcore gate: {probe}: decoded "
              f"{cur[fast] / 1e6:.1f} M steps/s vs classic "
              f"{cur[slow] / 1e6:.1f} M steps/s = {ratio:.2f}x "
              f"(need >= {min_ratio:.1f}x) -> "
              f"{'ok' if good else 'FAIL'}")
        ok = good and ok
    if baseline_path:
        base = load_items_per_second(baseline_path)
        ok = check_baseline(cur, base, SIMCORE_CALIBRATION,
                            max_regress) and ok
    return ok


def print_summary(cur):
    print("\nbenchmark                                items/sec")
    for name in sorted(cur):
        print(f"  {name:<38} {cur[name] / 1e6:>8.1f} M/s")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current", nargs="?",
                    help="bench_micro --json output (omit to run only "
                         "the monitor gate)")
    ap.add_argument("--baseline",
                    help="committed baseline JSON to regress against")
    ap.add_argument("--ratio-fast", default=DEFAULT_RATIO_FAST,
                    help="numerator benchmark of the same-run ratio")
    ap.add_argument("--ratio-slow", default=DEFAULT_RATIO_SLOW,
                    help="denominator benchmark of the same-run ratio")
    ap.add_argument("--calibration", default=DEFAULT_CALIBRATION,
                    help="host-speed anchor for the baseline gate")
    ap.add_argument("--min-ratio", type=float, default=1.05,
                    help="minimum fast/slow speedup (same run)")
    ap.add_argument("--max-regress", type=float, default=0.25,
                    help="maximum tolerated normalized slowdown")
    ap.add_argument("--summary", action="store_true",
                    help="print a throughput table")
    ap.add_argument("--monitor-metrics",
                    help="txrace_run --monitor --metrics-json dump to "
                         "gate for budget compliance")
    ap.add_argument("--budget-pct", type=float,
                    help="expected --budget-pct of the monitor run "
                         "(default: trust the file)")
    ap.add_argument("--profile-metrics",
                    help="--profile-out dump to gate for "
                         "txrace-profile-v1 well-formedness")
    ap.add_argument("--simcore",
                    help="bench_simcore --json output to gate for the "
                         "decoded step loop's speedup over classic")
    ap.add_argument("--simcore-baseline",
                    help="committed BENCH_simcore.json to regress "
                         "--simcore results against")
    args = ap.parse_args()

    if (not args.current and not args.monitor_metrics
            and not args.profile_metrics and not args.simcore):
        ap.error("need CURRENT.json, --monitor-metrics, "
                 "--profile-metrics, and/or --simcore")

    ok = True
    if args.current:
        cur = load_items_per_second(args.current)
        if not cur:
            print(f"error: no benchmarks with items_per_second in "
                  f"{args.current}", file=sys.stderr)
            return 1
        ok = check_ratio(cur, args.ratio_fast, args.ratio_slow,
                         args.min_ratio)
        if args.baseline:
            base = load_items_per_second(args.baseline)
            ok = check_baseline(cur, base, args.calibration,
                                args.max_regress) and ok
        if args.summary:
            print_summary(cur)
    if args.monitor_metrics:
        ok = check_monitor(args.monitor_metrics,
                           args.budget_pct) and ok
    if args.profile_metrics:
        ok = check_profile(args.profile_metrics) and ok
    if args.simcore:
        ok = check_simcore(args.simcore, args.simcore_baseline,
                           args.max_regress) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
