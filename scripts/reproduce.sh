#!/bin/sh
# Reproduce everything: build, test, regenerate every table/figure.
# Usage: scripts/reproduce.sh [build-dir]
set -e
BUILD="${1:-build}"
cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure 2>&1 | tee test_output.txt
for b in "$BUILD"/bench/bench_*; do
    echo "==== $b ===="
    "$b"
done 2>&1 | tee bench_output.txt
