/**
 * @file
 * Campaign front end: hunt races across a matrix of
 * (workload x seed x config-variant) runs on a worker fleet, then
 * print the deduplicated scoreboard and write the deterministic
 * txrace-campaign-v1 report.
 *
 *   txrace_hunt --apps vips,x264 --seeds 8 --jobs 4 --out campaign.json
 *   txrace_hunt --apps all --strategy perturb --seeds 2
 */

#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "campaign/campaign.hh"
#include "campaign/strategy.hh"
#include "core/repro.hh"
#include "service/checkpoint.hh"
#include "service/service.hh"
#include "service/store.hh"
#include "support/log.hh"
#include "workloads/workloads.hh"

using namespace txrace;

namespace {

[[noreturn]] void
usage()
{
    std::cout <<
        "usage: txrace_hunt --apps A,B,...|all [options]\n\n"
        "options:\n"
        "  --seeds N        seed budget per app (default 4)\n"
        "  --jobs N         pool worker threads (default 4; never\n"
        "                   affects the report, only wall time)\n"
        "  --shards N       aggregation shards (default 1; like\n"
        "                   --jobs, never affects the report)\n"
        "  --strategy S     sweep | abort-guided | perturb\n"
        "                   (default sweep)\n"
        "  --mode M         detection mode (default txrace-dyn)\n"
        "  --workers N      simulated threads per run (default 4)\n"
        "  --scale N        work multiplier per run (default 1)\n"
        "  --master-seed N  campaign master seed (default 1)\n"
        "  --out FILE       write the txrace-campaign-v1 JSON report\n"
        "  --profile-out FILE  write the fleet's txrace-profile-v1\n"
        "                   union (byte-identical across --jobs)\n"
        "  --progress-json FILE  stream NDJSON heartbeat records\n"
        "                   (txrace-progress-v1) while the fleet runs\n"
        "  --progress-every N  heartbeat cadence in completed jobs\n"
        "                   (default 8)\n"
        "  --trace-json FILE  write a Chrome trace-event timeline of\n"
        "                   per-job spans (worker lanes)\n"
        "  --quiet          no per-round progress chatter\n"
        "\n"
        "service mode (long-running, resumable):\n"
        "  --serve          run as the hunting service: checkpoint to\n"
        "                   the state dir, fold idempotently, shut\n"
        "                   down cleanly on SIGTERM/SIGINT\n"
        "  --state-dir D    where checkpoint.json / findings.json /\n"
        "                   campaign.json live (required with --serve)\n"
        "  --resume         restore the state dir's checkpoint and\n"
        "                   continue; only unseen jobs run\n"
        "  --checkpoint-every N  checkpoint cadence in folded jobs\n"
        "                   (default 16; 0 = round barriers only)\n"
        "  --spool D        ingest NDJSON job-batch files from D in\n"
        "                   sorted-filename order instead of running\n"
        "                   the campaign strategy\n"
        "  --stdin-jobs     ingest blank-line-separated NDJSON job\n"
        "                   batches from stdin\n"
        "  --follow         with --spool: keep polling for new batch\n"
        "                   files until SIGTERM\n"
        "\n"
        "store tools:\n"
        "  --merge F1,F2,.. union txrace-findings-v1 stores from the\n"
        "                   same campaign (commutative: any order\n"
        "                   yields identical bytes)\n"
        "  --findings-out FILE  where --merge writes the union\n"
        "                   (default '-')\n"
        "\n"
        "FILE may be '-' for stdout on any of the JSON exports.\n";
    std::exit(0);
}

/** "-" means stdout; anything else opens @p file for writing. */
std::ostream &
openOut(const std::string &path, std::ofstream &file)
{
    if (path == "-")
        return std::cout;
    file.open(path);
    if (!file)
        fatal("cannot write %s", path.c_str());
    return file;
}

std::vector<std::string>
parseApps(const std::string &list)
{
    if (list == "all")
        return workloads::appNames();
    std::vector<std::string> apps;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string item = list.substr(pos, comma - pos);
        if (item.empty())
            fatal("--apps: empty entry in '%s'", list.c_str());
        apps.push_back(item);
        pos = comma + 1;
    }
    return apps;
}

core::RunMode
parseMode(const std::string &name)
{
    for (int m = 0; m <= int(core::RunMode::TxRaceProfLoopcut); ++m)
        if (name == core::cliModeName(core::RunMode(m)))
            return core::RunMode(m);
    if (name == "txrace-prof")
        return core::RunMode::TxRaceProfLoopcut;
    fatal("unknown mode '%s'", name.c_str());
}

/** Raised by SIGTERM/SIGINT; the service polls it between folds. */
std::atomic<bool> g_stop{false};

extern "C" void
onStopSignal(int)
{
    g_stop.store(true, std::memory_order_relaxed);
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> items;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string item = list.substr(pos, comma - pos);
        if (!item.empty())
            items.push_back(item);
        pos = comma + 1;
    }
    return items;
}

/** `--merge F1,F2,...`: union findings stores, write, exit. */
int
mergeStores(const std::string &list, const std::string &out_path)
{
    std::vector<std::string> paths = splitCommas(list);
    if (paths.size() < 2)
        fatal("--merge needs at least two store files");
    service::FindingsStore total;
    std::string error;
    for (size_t i = 0; i < paths.size(); ++i) {
        std::string text;
        if (!service::readFile(paths[i], text, error))
            fatal("--merge: %s", error.c_str());
        service::FindingsStore store;
        if (!service::FindingsStore::parse(text, store, error))
            fatal("--merge: %s: %s", paths[i].c_str(), error.c_str());
        if (i == 0)
            total = std::move(store);
        else if (!total.merge(store, error))
            fatal("--merge: %s: %s", paths[i].c_str(), error.c_str());
    }
    std::ofstream file;
    std::ostream &out = openOut(out_path, file);
    total.write(out);
    if (out_path != "-")
        std::cout << "merged " << paths.size() << " store(s) into "
                  << out_path << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    campaign::CampaignConfig cfg;
    std::string apps_arg;
    std::string out_path;
    std::string profile_out_path;
    std::string progress_json_path;
    std::string trace_json_path;
    bool quiet = false;
    bool serve = false;
    bool resume = false;
    bool stdin_jobs = false;
    bool follow = false;
    uint64_t checkpoint_every = 16;
    std::string state_dir;
    std::string spool_dir;
    std::string merge_arg;
    std::string findings_out_path = "-";

    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            if (std::strcmp(argv[i], flag) != 0)
                return nullptr;
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--help") == 0) {
            usage();
        } else if (const char *v = value("--apps")) {
            apps_arg = v;
        } else if (const char *v1 = value("--seeds")) {
            cfg.seedsPerApp = std::strtoull(v1, nullptr, 10);
        } else if (const char *v2 = value("--jobs")) {
            cfg.jobs =
                static_cast<uint32_t>(std::strtoul(v2, nullptr, 10));
        } else if (const char *v3 = value("--strategy")) {
            cfg.strategy = v3;
        } else if (const char *v4 = value("--mode")) {
            cfg.mode = parseMode(v4);
        } else if (const char *v5 = value("--workers")) {
            cfg.workers =
                static_cast<uint32_t>(std::strtoul(v5, nullptr, 10));
        } else if (const char *v6 = value("--scale")) {
            cfg.scale = std::strtoull(v6, nullptr, 10);
        } else if (const char *v7 = value("--master-seed")) {
            cfg.masterSeed = std::strtoull(v7, nullptr, 10);
        } else if (const char *v8 = value("--out")) {
            out_path = v8;
        } else if (const char *v9 = value("--profile-out")) {
            profile_out_path = v9;
        } else if (const char *v10 = value("--progress-json")) {
            progress_json_path = v10;
        } else if (const char *v11 = value("--progress-every")) {
            cfg.progressEvery = std::strtoull(v11, nullptr, 10);
            if (cfg.progressEvery == 0)
                fatal("--progress-every must be positive");
        } else if (const char *v12 = value("--trace-json")) {
            trace_json_path = v12;
        } else if (const char *v13 = value("--shards")) {
            cfg.shards =
                static_cast<uint32_t>(std::strtoul(v13, nullptr, 10));
            if (cfg.shards == 0)
                fatal("--shards must be positive");
        } else if (const char *v14 = value("--state-dir")) {
            state_dir = v14;
        } else if (const char *v15 = value("--checkpoint-every")) {
            checkpoint_every = std::strtoull(v15, nullptr, 10);
        } else if (const char *v16 = value("--spool")) {
            spool_dir = v16;
        } else if (const char *v17 = value("--merge")) {
            merge_arg = v17;
        } else if (const char *v18 = value("--findings-out")) {
            findings_out_path = v18;
        } else if (std::strcmp(argv[i], "--serve") == 0) {
            serve = true;
        } else if (std::strcmp(argv[i], "--resume") == 0) {
            resume = true;
        } else if (std::strcmp(argv[i], "--stdin-jobs") == 0) {
            stdin_jobs = true;
        } else if (std::strcmp(argv[i], "--follow") == 0) {
            follow = true;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            fatal("unknown option '%s' (try --help)", argv[i]);
        }
    }
    if (!merge_arg.empty())
        return mergeStores(merge_arg, findings_out_path);

    // On --resume the apps come from the checkpoint, so --apps is
    // only mandatory for fresh campaigns.
    if (apps_arg.empty() && !(serve && resume))
        usage();
    if (!apps_arg.empty())
        cfg.apps = parseApps(apps_arg);

    std::ofstream progress_file;
    std::ostream *progress_json = nullptr;
    if (!progress_json_path.empty())
        progress_json = &openOut(progress_json_path, progress_file);

    if (serve) {
        std::signal(SIGTERM, onStopSignal);
        std::signal(SIGINT, onStopSignal);
        service::ServiceOptions opt;
        opt.cfg = cfg;
        opt.stateDir = state_dir;
        opt.resume = resume;
        opt.checkpointEvery = checkpoint_every;
        opt.spoolDir = spool_dir;
        opt.jobStream = stdin_jobs ? &std::cin : nullptr;
        opt.follow = follow;
        opt.progressJson = progress_json;
        opt.chatter = quiet ? nullptr : &std::cout;
        opt.stopFlag = &g_stop;
        service::ServiceResult sres = service::runService(opt);
        std::cout << "service: " << sres.jobsFolded
                  << " job(s) folded, " << sres.duplicatesSkipped
                  << " duplicate(s) skipped, " << sres.checkpoints
                  << " checkpoint(s)\n";
        if (!sres.completed) {
            std::cout << "interrupted: checkpoint saved to "
                      << state_dir
                      << "; rerun with --resume to continue\n";
            return 3;
        }
        std::cout << "complete: report, findings store, and "
                     "checkpoint written to "
                  << state_dir << "\n";
        return sres.report.errors == 0 ? 0 : 2;
    }

    campaign::CampaignResult result = campaign::runCampaign(
        cfg, quiet ? nullptr : &std::cout, progress_json);

    std::cout << "campaign: " << result.runs << " runs, "
              << result.rounds << " round(s), " << result.errors
              << " error(s), strategy " << cfg.strategy << "\n";
    std::cout << "findings: " << result.findings.size()
              << " unique race(s) from " << result.rawReports
              << " raw reports (dedup ratio ";
    std::cout.precision(2);
    std::cout << std::fixed << result.dedupRatio << "x)\n";

    std::cout << "\n  app            expect  found  match  falsepos"
                 "  precision  recall\n";
    for (const campaign::AppScore &s : result.scores) {
        std::cout << "  " << std::left << std::setw(14) << s.app
                  << std::right << std::setw(7) << s.expected
                  << std::setw(7) << s.found << std::setw(7)
                  << s.matched << std::setw(10) << s.falsePositives
                  << std::setw(11) << s.precision << std::setw(8)
                  << s.recall << "\n";
    }

    if (result.variants.size() > 1) {
        std::cout << "\n  variant       runs  raw  first-found\n";
        for (const campaign::VariantYield &vy : result.variants)
            std::cout << "  " << std::left << std::setw(12)
                      << vy.variant << std::right << std::setw(6)
                      << vy.runs << std::setw(5) << vy.rawReports
                      << std::setw(13) << vy.firstFound << "\n";
    }

    std::cout << "\ntiming: " << result.timing.wallSeconds << "s wall, "
              << result.timing.runsPerSec << " runs/s with "
              << result.timing.jobs << " job(s), "
              << result.timing.steals << " steal(s)\n";

    if (!out_path.empty()) {
        std::ofstream file;
        std::ostream &out = openOut(out_path, file);
        campaign::writeCampaignJson(out, cfg, result);
        if (out_path != "-")
            std::cout << "report written to " << out_path << "\n";
    }

    if (!profile_out_path.empty()) {
        std::ofstream file;
        std::ostream &out = openOut(profile_out_path, file);
        result.profile.write(out);
        if (profile_out_path != "-")
            std::cout << "profile written to " << profile_out_path
                      << "\n";
    }

    if (!trace_json_path.empty()) {
        std::ofstream file;
        std::ostream &out = openOut(trace_json_path, file);
        campaign::writeCampaignTrace(out, result);
        if (trace_json_path != "-")
            std::cout << "trace written to " << trace_json_path
                      << " (" << result.timing.spans.size()
                      << " job span(s); open in chrome://tracing or "
                         "Perfetto)\n";
    }
    return result.errors == 0 ? 0 : 2;
}
