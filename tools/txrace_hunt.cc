/**
 * @file
 * Campaign front end: hunt races across a matrix of
 * (workload x seed x config-variant) runs on a worker fleet, then
 * print the deduplicated scoreboard and write the deterministic
 * txrace-campaign-v1 report.
 *
 *   txrace_hunt --apps vips,x264 --seeds 8 --jobs 4 --out campaign.json
 *   txrace_hunt --apps all --strategy perturb --seeds 2
 */

#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>

#include "campaign/campaign.hh"
#include "campaign/strategy.hh"
#include "core/repro.hh"
#include "support/log.hh"
#include "workloads/workloads.hh"

using namespace txrace;

namespace {

[[noreturn]] void
usage()
{
    std::cout <<
        "usage: txrace_hunt --apps A,B,...|all [options]\n\n"
        "options:\n"
        "  --seeds N        seed budget per app (default 4)\n"
        "  --jobs N         pool worker threads (default 4; never\n"
        "                   affects the report, only wall time)\n"
        "  --strategy S     sweep | abort-guided | perturb\n"
        "                   (default sweep)\n"
        "  --mode M         detection mode (default txrace-dyn)\n"
        "  --workers N      simulated threads per run (default 4)\n"
        "  --scale N        work multiplier per run (default 1)\n"
        "  --master-seed N  campaign master seed (default 1)\n"
        "  --out FILE       write the txrace-campaign-v1 JSON report\n"
        "  --profile-out FILE  write the fleet's txrace-profile-v1\n"
        "                   union (byte-identical across --jobs)\n"
        "  --progress-json FILE  stream NDJSON heartbeat records\n"
        "                   (txrace-progress-v1) while the fleet runs\n"
        "  --progress-every N  heartbeat cadence in completed jobs\n"
        "                   (default 8)\n"
        "  --trace-json FILE  write a Chrome trace-event timeline of\n"
        "                   per-job spans (worker lanes)\n"
        "  --quiet          no per-round progress chatter\n"
        "\n"
        "FILE may be '-' for stdout on any of the JSON exports.\n";
    std::exit(0);
}

/** "-" means stdout; anything else opens @p file for writing. */
std::ostream &
openOut(const std::string &path, std::ofstream &file)
{
    if (path == "-")
        return std::cout;
    file.open(path);
    if (!file)
        fatal("cannot write %s", path.c_str());
    return file;
}

std::vector<std::string>
parseApps(const std::string &list)
{
    if (list == "all")
        return workloads::appNames();
    std::vector<std::string> apps;
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string item = list.substr(pos, comma - pos);
        if (item.empty())
            fatal("--apps: empty entry in '%s'", list.c_str());
        apps.push_back(item);
        pos = comma + 1;
    }
    return apps;
}

core::RunMode
parseMode(const std::string &name)
{
    for (int m = 0; m <= int(core::RunMode::TxRaceProfLoopcut); ++m)
        if (name == core::cliModeName(core::RunMode(m)))
            return core::RunMode(m);
    if (name == "txrace-prof")
        return core::RunMode::TxRaceProfLoopcut;
    fatal("unknown mode '%s'", name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    campaign::CampaignConfig cfg;
    std::string apps_arg;
    std::string out_path;
    std::string profile_out_path;
    std::string progress_json_path;
    std::string trace_json_path;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            if (std::strcmp(argv[i], flag) != 0)
                return nullptr;
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--help") == 0) {
            usage();
        } else if (const char *v = value("--apps")) {
            apps_arg = v;
        } else if (const char *v1 = value("--seeds")) {
            cfg.seedsPerApp = std::strtoull(v1, nullptr, 10);
        } else if (const char *v2 = value("--jobs")) {
            cfg.jobs =
                static_cast<uint32_t>(std::strtoul(v2, nullptr, 10));
        } else if (const char *v3 = value("--strategy")) {
            cfg.strategy = v3;
        } else if (const char *v4 = value("--mode")) {
            cfg.mode = parseMode(v4);
        } else if (const char *v5 = value("--workers")) {
            cfg.workers =
                static_cast<uint32_t>(std::strtoul(v5, nullptr, 10));
        } else if (const char *v6 = value("--scale")) {
            cfg.scale = std::strtoull(v6, nullptr, 10);
        } else if (const char *v7 = value("--master-seed")) {
            cfg.masterSeed = std::strtoull(v7, nullptr, 10);
        } else if (const char *v8 = value("--out")) {
            out_path = v8;
        } else if (const char *v9 = value("--profile-out")) {
            profile_out_path = v9;
        } else if (const char *v10 = value("--progress-json")) {
            progress_json_path = v10;
        } else if (const char *v11 = value("--progress-every")) {
            cfg.progressEvery = std::strtoull(v11, nullptr, 10);
            if (cfg.progressEvery == 0)
                fatal("--progress-every must be positive");
        } else if (const char *v12 = value("--trace-json")) {
            trace_json_path = v12;
        } else if (std::strcmp(argv[i], "--quiet") == 0) {
            quiet = true;
        } else {
            fatal("unknown option '%s' (try --help)", argv[i]);
        }
    }
    if (apps_arg.empty())
        usage();
    cfg.apps = parseApps(apps_arg);

    std::ofstream progress_file;
    std::ostream *progress_json = nullptr;
    if (!progress_json_path.empty())
        progress_json = &openOut(progress_json_path, progress_file);

    campaign::CampaignResult result = campaign::runCampaign(
        cfg, quiet ? nullptr : &std::cout, progress_json);

    std::cout << "campaign: " << result.runs << " runs, "
              << result.rounds << " round(s), " << result.errors
              << " error(s), strategy " << cfg.strategy << "\n";
    std::cout << "findings: " << result.findings.size()
              << " unique race(s) from " << result.rawReports
              << " raw reports (dedup ratio ";
    std::cout.precision(2);
    std::cout << std::fixed << result.dedupRatio << "x)\n";

    std::cout << "\n  app            expect  found  match  falsepos"
                 "  precision  recall\n";
    for (const campaign::AppScore &s : result.scores) {
        std::cout << "  " << std::left << std::setw(14) << s.app
                  << std::right << std::setw(7) << s.expected
                  << std::setw(7) << s.found << std::setw(7)
                  << s.matched << std::setw(10) << s.falsePositives
                  << std::setw(11) << s.precision << std::setw(8)
                  << s.recall << "\n";
    }

    if (result.variants.size() > 1) {
        std::cout << "\n  variant       runs  raw  first-found\n";
        for (const campaign::VariantYield &vy : result.variants)
            std::cout << "  " << std::left << std::setw(12)
                      << vy.variant << std::right << std::setw(6)
                      << vy.runs << std::setw(5) << vy.rawReports
                      << std::setw(13) << vy.firstFound << "\n";
    }

    std::cout << "\ntiming: " << result.timing.wallSeconds << "s wall, "
              << result.timing.runsPerSec << " runs/s with "
              << result.timing.jobs << " job(s), "
              << result.timing.steals << " steal(s)\n";

    if (!out_path.empty()) {
        std::ofstream file;
        std::ostream &out = openOut(out_path, file);
        campaign::writeCampaignJson(out, cfg, result);
        if (out_path != "-")
            std::cout << "report written to " << out_path << "\n";
    }

    if (!profile_out_path.empty()) {
        std::ofstream file;
        std::ostream &out = openOut(profile_out_path, file);
        result.profile.write(out);
        if (profile_out_path != "-")
            std::cout << "profile written to " << profile_out_path
                      << "\n";
    }

    if (!trace_json_path.empty()) {
        std::ofstream file;
        std::ostream &out = openOut(trace_json_path, file);
        campaign::writeCampaignTrace(out, result);
        if (trace_json_path != "-")
            std::cout << "trace written to " << trace_json_path
                      << " (" << result.timing.spans.size()
                      << " job span(s); open in chrome://tracing or "
                         "Perfetto)\n";
    }
    return result.errors == 0 ? 0 : 2;
}
