/**
 * @file
 * Command-line front end: run any bundled workload under any
 * detection mode and print statistics plus the full race report.
 *
 *   txrace_run --app vips --mode txrace --seed 3
 *   txrace_run --app bodytrack --mode tsan --workers 8 --stats
 *   txrace_run --list
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/metrics_export.hh"
#include "core/report_format.hh"
#include "core/repro.hh"
#include "fault/fault.hh"
#include "ir/text.hh"
#include "support/log.hh"
#include "workloads/patterns.hh"
#include "workloads/workloads.hh"

using namespace txrace;

namespace {

core::RunMode
parseMode(const std::string &name)
{
    if (name == "native")
        return core::RunMode::Native;
    if (name == "tsan")
        return core::RunMode::TSan;
    if (name == "sampling")
        return core::RunMode::TSanSampling;
    if (name == "eraser")
        return core::RunMode::Eraser;
    if (name == "racetm")
        return core::RunMode::RaceTM;
    if (name == "txrace" || name == "txrace-prof")
        return core::RunMode::TxRaceProfLoopcut;
    if (name == "txrace-dyn")
        return core::RunMode::TxRaceDynLoopcut;
    if (name == "txrace-noopt")
        return core::RunMode::TxRaceNoOpt;
    fatal("unknown mode '%s' (native, tsan, sampling, eraser, racetm, "
          "txrace, txrace-dyn, txrace-noopt)", name.c_str());
}

/**
 * Resolve an output path for the JSON exporters: "-" means stdout,
 * anything else opens @p file for writing (fatal on failure).
 */
std::ostream &
openOut(const std::string &path, std::ofstream &file)
{
    if (path == "-")
        return std::cout;
    file.open(path);
    if (!file)
        fatal("cannot write %s", path.c_str());
    return file;
}

[[noreturn]] void
usage()
{
    std::cout <<
        "usage: txrace_run --app NAME [options]\n"
        "       txrace_run --program FILE.txr [options]\n"
        "       txrace_run --pattern NAME [options]\n"
        "       txrace_run --list\n\n"
        "options:\n"
        "  --mode M       native | tsan | sampling | eraser |\n"
        "                 racetm |\n"
        "                 txrace | txrace-dyn | txrace-noopt\n"
        "                 (default: txrace)\n"
        "  --workers N    worker threads (default 4)\n"
        "  --scale N      work multiplier (default 1)\n"
        "  --seed N       schedule seed (default 1)\n"
        "  --seed-list A,B,...  run once per seed and report the\n"
        "                 union of distinct races\n"
        "  --irq-scale X  multiply the interrupt rate by X\n"
        "  --rate R       sampling rate for --mode sampling\n"
        "  --trace N      record and print the first N events\n"
        "  --fault NAME   inject a named fault scenario\n"
        "  --fault-horizon N  scale episode times to N steps\n"
        "  --slowpath S   conflict-abort repair: window (replay only\n"
        "                 the aborting window from the fast-path\n"
        "                 version log; default) or region (the paper's\n"
        "                 TxFail-broadcast whole-region re-execution)\n"
        "  --governor     enable the adaptive fallback governor\n"
        "  --monitor      production-monitor mode: enforce a hard\n"
        "                 overhead budget via per-site adaptive\n"
        "                 sampling (TxRace modes only; implies\n"
        "                 --governor)\n"
        "  --budget-pct N overhead budget as % of native virtual time\n"
        "                 per window (default 5)\n"
        "  --no-elide     disable the access-elision stack (static\n"
        "                 elision passes, the HTM owned-line filter,\n"
        "                 and the detector same-epoch fast paths);\n"
        "                 races reported must be identical either way\n"
        "  --no-calibrate skip the per-app TSan-cost calibration\n"
        "                 (matches campaign runs)\n"
        "  --stats [PREFIX]  dump counters (optionally only those\n"
        "                 whose name contains PREFIX, e.g. gov, fault)\n"
        "  --metrics-json FILE  write the txrace-metrics-v1 document\n"
        "  --trace-json FILE    write a Chrome trace-event timeline\n"
        "                 (load in chrome://tracing or Perfetto)\n"
        "  --profile-out FILE   write the txrace-profile-v1 site\n"
        "                 profile accumulated over this invocation\n"
        "  --profile-in FILE    seed the profile with a previous\n"
        "                 --profile-out document (cross-run merge)\n"
        "  --explain      render the forensics captures (flight\n"
        "                 windows, last-writer chain) after the report\n"
        "  --no-flightrec disable the per-thread flight recorder\n"
        "  --no-overhead  skip the native reference run\n"
        "\n"
        "FILE may be '-' for stdout on any of the JSON exports.\n";
    std::exit(0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string app_name;
    std::string program_path;
    std::string pattern_name;
    std::string mode_name = "txrace";
    workloads::WorkloadParams params;
    uint64_t seed = 1;
    std::string seed_list;
    double irq_scale = 1.0;
    double rate = 0.5;
    bool dump_stats = false;
    std::string stats_filter;
    bool with_overhead = true;
    size_t trace = 0;
    std::string fault_name;
    uint64_t fault_horizon = 200'000;
    std::string slowpath_name = "window";
    bool governor = false;
    bool monitor = false;
    double budget_pct = 5.0;
    bool elide = true;
    bool explain = false;
    bool flightrec = true;
    std::string metrics_json_path;
    std::string trace_json_path;
    std::string profile_out_path;
    std::string profile_in_path;

    for (int i = 1; i < argc; ++i) {
        auto value = [&](const char *flag) -> const char * {
            size_t flen = std::strlen(flag);
            // Both `--flag value` and `--flag=value` spellings work.
            if (std::strncmp(argv[i], flag, flen) == 0 &&
                argv[i][flen] == '=')
                return argv[i] + flen + 1;
            if (std::strcmp(argv[i], flag) != 0)
                return nullptr;
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--list") == 0) {
            std::cout << "applications:\n";
            for (const std::string &name : workloads::appNames())
                std::cout << "  " << name << "\n";
            std::cout << "scenarios (not in the paper tables):\n";
            std::cout << "  apache-stream\n";
            std::cout << "patterns (--pattern):\n";
            for (const std::string &name : workloads::patternNames())
                std::cout << "  " << name << "\n";
            std::cout << "fault scenarios (--fault):\n";
            for (const std::string &name : fault::scenarioNames())
                std::cout << "  " << name << "\n";
            return 0;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            usage();
        } else if (const char *v = value("--app")) {
            app_name = v;
        } else if (const char *vp = value("--program")) {
            program_path = vp;
        } else if (const char *vn = value("--pattern")) {
            pattern_name = vn;
        } else if (const char *v2 = value("--mode")) {
            mode_name = v2;
        } else if (const char *v3 = value("--workers")) {
            params.nWorkers =
                static_cast<uint32_t>(std::strtoul(v3, nullptr, 10));
        } else if (const char *v4 = value("--scale")) {
            params.scale = std::strtoull(v4, nullptr, 10);
        } else if (const char *v5 = value("--seed")) {
            seed = std::strtoull(v5, nullptr, 10);
        } else if (const char *vsl = value("--seed-list")) {
            seed_list = vsl;
        } else if (const char *vis = value("--irq-scale")) {
            irq_scale = std::strtod(vis, nullptr);
        } else if (const char *v6 = value("--rate")) {
            rate = std::strtod(v6, nullptr);
        } else if (const char *v7 = value("--trace")) {
            trace = std::strtoull(v7, nullptr, 10);
        } else if (const char *v8 = value("--fault")) {
            fault_name = v8;
        } else if (const char *v9 = value("--fault-horizon")) {
            fault_horizon = std::strtoull(v9, nullptr, 10);
        } else if (const char *vsp = value("--slowpath")) {
            slowpath_name = vsp;
        } else if (std::strcmp(argv[i], "--governor") == 0) {
            governor = true;
        } else if (std::strcmp(argv[i], "--monitor") == 0) {
            monitor = true;
        } else if (const char *vb = value("--budget-pct")) {
            budget_pct = std::strtod(vb, nullptr);
            if (budget_pct <= 0.0)
                fatal("--budget-pct must be positive");
        } else if (std::strcmp(argv[i], "--no-elide") == 0) {
            elide = false;
        } else if (std::strcmp(argv[i], "--no-calibrate") == 0) {
            params.calibrate = false;
        } else if (const char *vm = value("--metrics-json")) {
            metrics_json_path = vm;
        } else if (const char *vt = value("--trace-json")) {
            trace_json_path = vt;
        } else if (const char *vpo = value("--profile-out")) {
            profile_out_path = vpo;
        } else if (const char *vpi = value("--profile-in")) {
            profile_in_path = vpi;
        } else if (std::strcmp(argv[i], "--explain") == 0) {
            explain = true;
        } else if (std::strcmp(argv[i], "--no-flightrec") == 0) {
            flightrec = false;
        } else if (std::strcmp(argv[i], "--stats") == 0) {
            dump_stats = true;
            // Optional value: a name filter (substring match, so
            // `--stats gov` catches txrace.gov.*).
            if (i + 1 < argc && argv[i + 1][0] != '-')
                stats_filter = argv[++i];
        } else if (std::strcmp(argv[i], "--no-overhead") == 0) {
            with_overhead = false;
        } else {
            fatal("unknown option '%s' (try --help)", argv[i]);
        }
    }
    if (app_name.empty() && program_path.empty() &&
        pattern_name.empty())
        usage();
    if (!app_name.empty() + !program_path.empty() +
            !pattern_name.empty() >
        1)
        fatal("--app, --program and --pattern are mutually exclusive");

    core::RunConfig cfg;
    cfg.mode = parseMode(mode_name);
    cfg.sampleRate = rate;
    if (slowpath_name == "window")
        cfg.slowpath = core::SlowPathKind::Window;
    else if (slowpath_name == "region")
        cfg.slowpath = core::SlowPathKind::Region;
    else
        fatal("unknown --slowpath '%s' (window, region)",
              slowpath_name.c_str());
    ir::Program prog = [&] {
        if (!program_path.empty())
            return ir::loadProgramFile(program_path);
        if (!pattern_name.empty()) {
            workloads::Pattern pattern =
                workloads::makePattern(pattern_name);
            std::cout << pattern.name << ": " << pattern.description
                      << "\n\n";
            return std::move(pattern.program);
        }
        workloads::AppModel app = workloads::makeApp(app_name, params);
        cfg.machine = app.machine;  // calibrated costs + abort rates
        return std::move(app.program);
    }();
    cfg.machine.seed = seed;
    cfg.machine.interruptPerStep *= irq_scale;
    cfg.machine.recordEvents = trace > 0;
    cfg.machine.recordTrace = !trace_json_path.empty();
    cfg.machine.recordFlight = flightrec;
    if (!fault_name.empty())
        cfg.machine.faults =
            fault::makeScenario(fault_name, fault_horizon);
    cfg.governor.enabled = governor;
    if (monitor) {
        if (cfg.mode != core::RunMode::TxRaceNoOpt &&
            cfg.mode != core::RunMode::TxRaceDynLoopcut &&
            cfg.mode != core::RunMode::TxRaceProfLoopcut)
            fatal("--monitor requires a txrace mode");
        // Monitor mode composes the budget controller on top of the
        // ladder: the governor rides out storms, the budget caps what
        // the ride may cost.
        cfg.governor.enabled = true;
        cfg.budget.enabled = true;
        cfg.budget.budgetPct = budget_pct;
    }
    if (!elide) {
        // All three elision layers off together: the ablation point is
        // "no redundancy removal anywhere", and the differential
        // soundness test compares against exactly this configuration.
        cfg.passes.elide.enabled = false;
        cfg.machine.htm.accessFilter = false;
        cfg.machine.det.epochFastPath = false;
    }

    core::RunIdentity identity;
    identity.target = !program_path.empty()
                          ? core::RunTarget::ProgramFile
                      : !pattern_name.empty() ? core::RunTarget::Pattern
                                              : core::RunTarget::App;
    identity.name = !program_path.empty()    ? program_path
                    : !pattern_name.empty()  ? pattern_name
                                             : app_name;
    identity.mode = core::cliModeName(cfg.mode);
    identity.workers = params.nWorkers;
    identity.scale = params.scale;
    identity.fault = fault_name;
    identity.faultHorizon = fault_name.empty() ? 0 : fault_horizon;
    identity.governor = governor;
    identity.monitor = monitor;
    identity.budgetPct = budget_pct;
    identity.elide = elide;
    identity.irqScale = irq_scale;
    identity.calibrated = params.calibrate;
    identity.slowpath = cfg.slowpath;

    std::vector<uint64_t> seeds = {seed};
    if (!seed_list.empty())
        seeds = core::parseSeedList(seed_list);

    // Cross-run profile: start from --profile-in (if any), fold in
    // every run of this invocation, write with --profile-out.
    telemetry::Profile profile;
    if (!profile_in_path.empty()) {
        std::ifstream in(profile_in_path);
        if (!in)
            fatal("cannot read %s", profile_in_path.c_str());
        std::ostringstream buf;
        buf << in.rdbuf();
        std::string err;
        if (!telemetry::Profile::parse(buf.str(), profile, err))
            fatal("%s: %s", profile_in_path.c_str(), err.c_str());
    }

    detector::RaceSet union_races;
    core::RunResult result;
    for (uint64_t s : seeds) {
        cfg.machine.seed = s;
        identity.seed = s;
        if (seeds.size() > 1)
            std::cout << "=== seed " << s << " ===\n";
        result = core::runProgram(prog, cfg);
        core::printRaceReport(prog, result, std::cout, identity,
                              core::configDigest(cfg));
        if (explain)
            core::printForensics(prog, result, std::cout);
        profile.merge(core::buildRunProfile(identity.name, result));

        if (!result.error.ok()) {
            std::cout << "abnormal end: "
                      << sim::runErrorKindName(result.error.kind)
                      << " after " << result.error.stepsExecuted
                      << " steps\n";
            for (const auto &info : result.error.threads)
                std::cout << "  thread " << info.tid << " at "
                          << info.where << "\n";
        }
        union_races.merge(result.races);
    }
    if (seeds.size() > 1)
        std::cout << "seed-list union: " << union_races.count()
                  << " distinct race(s) across " << seeds.size()
                  << " seed(s)\n";

    if (with_overhead && cfg.mode != core::RunMode::Native) {
        core::RunConfig ncfg = cfg;
        ncfg.mode = core::RunMode::Native;
        core::RunResult native = core::runProgram(prog, ncfg);
        std::cout << "runtime overhead vs native: ";
        std::cout.precision(2);
        std::cout << std::fixed << result.overheadVs(native) << "x\n";
    }
    std::cout << "transactions: " << result.stats.get("tx.committed")
              << " committed, "
              << result.stats.get("tx.abort.conflict") << " conflict / "
              << result.stats.get("tx.abort.capacity") << " capacity / "
              << result.stats.get("tx.abort.unknown")
              << " unknown aborts\n";
    if (monitor) {
        uint64_t over = 0;
        for (const core::BudgetWindow &w : result.budget.windows)
            if (w.hardOver)
                ++over;
        std::cout << "budget: " << result.budget.windows.size()
                  << " window(s), " << over << " over the "
                  << budget_pct << "% budget, "
                  << result.budget.siteCuts << " site cut(s), "
                  << result.budget.siteProbes << " probe(s)\n";
    }

    if (trace > 0) {
        std::cout << "\nevent timeline (first " << trace << "):\n";
        result.events.print(std::cout, trace);
    }

    if (dump_stats) {
        std::cout << "\ncounters";
        if (!stats_filter.empty())
            std::cout << " (matching '" << stats_filter << "')";
        std::cout << ":\n";
        for (const auto &[name, v] : result.stats.all()) {
            if (!stats_filter.empty() &&
                name.find(stats_filter) == std::string::npos)
                continue;
            std::cout << "  " << name << " = " << v << "\n";
        }
    }

    if (!metrics_json_path.empty()) {
        std::ofstream file;
        std::ostream &out = openOut(metrics_json_path, file);
        core::MetricsMeta meta;
        meta.app = !app_name.empty() ? app_name
                   : !pattern_name.empty() ? pattern_name
                                           : program_path;
        meta.mode = mode_name;
        meta.seed = seed;
        meta.workers = params.nWorkers;
        meta.scale = params.scale;
        core::writeMetricsJson(out, meta, &prog, result);
        if (metrics_json_path != "-")
            std::cout << "metrics written to " << metrics_json_path
                      << "\n";
    }

    if (!trace_json_path.empty()) {
        std::ofstream file;
        std::ostream &out = openOut(trace_json_path, file);
        result.telemetry.trace.writeChromeTrace(out);
        if (trace_json_path != "-")
            std::cout << "trace written to " << trace_json_path
                      << " ("
                      << result.telemetry.trace.events().size()
                      << " events; open in chrome://tracing or "
                         "Perfetto)\n";
    }

    if (!profile_out_path.empty()) {
        std::ofstream file;
        std::ostream &out = openOut(profile_out_path, file);
        profile.write(out);
        if (profile_out_path != "-")
            std::cout << "profile written to " << profile_out_path
                      << "\n";
    }
    return result.error.ok() ? 0 : 2;
}
