/**
 * @file
 * Simulator step-loop benchmarks: wall-clock steps/sec of the decoded
 * threaded-code quantum loop (StepLoop::Decoded) against the classic
 * per-step switch interpreter (StepLoop::Classic) on three probes:
 *
 *  - compute-bound: uncontended arithmetic and thread-local memory,
 *    the case quantum batching and threaded dispatch target. CI holds
 *    Decoded >= 2x Classic here (same-run ratio, host-immune).
 *  - sync-heavy: a tight lock/update/unlock loop. Every sync op is a
 *    forced preemption point, so batching buys little; the O(1)
 *    runnable set and decoded dispatch must still keep Decoded no
 *    slower than Classic.
 *  - tx-heavy: the full TxRace pipeline (transactions, conflict
 *    detection, aborts). Dominated by the HTM engine and detector;
 *    the gate only requires no regression.
 *
 * Items/sec is scheduler steps/sec (actual steps executed, taken from
 * the run result), so the numbers compare across lanes and probes.
 * BENCH_simcore.json commits the reference run for the baseline
 * regression gate in scripts/bench_compare.py.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/driver.hh"
#include "core/policies.hh"
#include "ir/builder.hh"
#include "sim/machine.hh"

using namespace txrace;

namespace {

/** Four workers doing mostly arithmetic with thread-local memory
 *  traffic: no sync beyond spawn/join, nothing transactional. */
ir::Program
computeProgram()
{
    ir::ProgramBuilder b;
    ir::Addr scratch = b.alloc("scratch", 6 * 64, 64);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(400, [&] {
        b.compute(1);
        b.compute(2);
        b.compute(1);
        b.store(ir::AddrExpr::perThread(scratch, 64));
        b.compute(3);
        b.compute(1);
        b.compute(2);
        b.load(ir::AddrExpr::perThread(scratch, 64));
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    return b.build();
}

/** Four workers hammering one lock-protected counter: every
 *  iteration is acquire, read-modify-write, release. */
ir::Program
syncProgram()
{
    ir::ProgramBuilder b;
    ir::Addr shared = b.alloc("shared", 64, 64);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(250, [&] {
        b.lock(0);
        b.load(ir::AddrExpr::absolute(shared));
        b.store(ir::AddrExpr::absolute(shared));
        b.unlock(0);
        b.compute(2);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    return b.build();
}

/** Random shared-table traffic under the TxRace pipeline: plenty of
 *  transactions, conflicts, and aborts. */
ir::Program
txProgram()
{
    ir::ProgramBuilder b;
    ir::Addr table = b.alloc("t", 1024 * 8);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(50, [&] {
        b.loop(8, [&] {
            b.load(ir::AddrExpr::randomIn(table, 1024, 8));
            b.compute(2);
        });
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    return b.build();
}

/** Run @p prog bare (NativePolicy, zero injection rates — the hot
 *  lane) under the given step loop and count real steps/sec. */
void
runBare(benchmark::State &state, const ir::Program &prog,
        sim::StepLoop lane)
{
    sim::MachineConfig cfg;
    cfg.interruptPerStep = 0.0;
    cfg.stepLoop = lane;
    uint64_t steps = 0;
    uint64_t seed = 1;
    for (auto _ : state) {
        cfg.seed = seed++;
        core::NativePolicy policy;
        sim::Machine m(prog, cfg, policy);
        const sim::RunError &err = m.run();
        benchmark::DoNotOptimize(err.kind);
        steps += err.stepsExecuted;
    }
    state.SetItemsProcessed(static_cast<int64_t>(steps));
}

/** Run @p prog through the full TxRace pipeline under the given step
 *  loop and count real steps/sec. */
void
runTx(benchmark::State &state, const ir::Program &prog,
      sim::StepLoop lane)
{
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceNoOpt;
    cfg.machine.stepLoop = lane;
    uint64_t steps = 0;
    uint64_t seed = 1;
    for (auto _ : state) {
        cfg.machine.seed = seed++;
        core::RunResult r = core::runProgram(prog, cfg);
        benchmark::DoNotOptimize(r.totalCost);
        steps += r.error.stepsExecuted;
    }
    state.SetItemsProcessed(static_cast<int64_t>(steps));
}

void
BM_SimComputeDecoded(benchmark::State &state)
{
    runBare(state, computeProgram(), sim::StepLoop::Decoded);
}
BENCHMARK(BM_SimComputeDecoded);

void
BM_SimComputeClassic(benchmark::State &state)
{
    runBare(state, computeProgram(), sim::StepLoop::Classic);
}
BENCHMARK(BM_SimComputeClassic);

void
BM_SimSyncDecoded(benchmark::State &state)
{
    runBare(state, syncProgram(), sim::StepLoop::Decoded);
}
BENCHMARK(BM_SimSyncDecoded);

void
BM_SimSyncClassic(benchmark::State &state)
{
    runBare(state, syncProgram(), sim::StepLoop::Classic);
}
BENCHMARK(BM_SimSyncClassic);

void
BM_SimTxDecoded(benchmark::State &state)
{
    runTx(state, txProgram(), sim::StepLoop::Decoded);
}
BENCHMARK(BM_SimTxDecoded);

void
BM_SimTxClassic(benchmark::State &state)
{
    runTx(state, txProgram(), sim::StepLoop::Classic);
}
BENCHMARK(BM_SimTxClassic);

} // namespace

/**
 * Entry point with one convenience over BENCHMARK_MAIN: `--json FILE`
 * expands to `--benchmark_out=FILE --benchmark_out_format=json`, the
 * spelling every other harness binary in bench/ uses.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    args.emplace_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            args.push_back("--benchmark_out=" +
                           std::string(argv[++i]));
            args.emplace_back("--benchmark_out_format=json");
        } else {
            args.push_back(std::move(a));
        }
    }
    std::vector<char *> cargs;
    cargs.reserve(args.size());
    for (std::string &a : args)
        cargs.push_back(a.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
