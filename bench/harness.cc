#include "harness.hh"

#include <cstring>

#include "support/log.hh"

namespace txrace::bench {

Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto want = [&](const char *flag) -> const char * {
            if (std::strcmp(argv[i], flag) != 0)
                return nullptr;
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (const char *v = want("--workers")) {
            opt.workers = static_cast<uint32_t>(std::strtoul(
                v, nullptr, 10));
        } else if (const char *v2 = want("--scale")) {
            opt.scale = std::strtoull(v2, nullptr, 10);
        } else if (const char *v3 = want("--seed")) {
            opt.seed = std::strtoull(v3, nullptr, 10);
        } else if (const char *vr = want("--runs")) {
            opt.runs = static_cast<uint32_t>(
                std::strtoul(vr, nullptr, 10));
        } else if (const char *v4 = want("--app")) {
            opt.only = v4;
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opt.csv = true;
        } else {
            fatal("unknown option '%s' (use --workers N --scale N "
                  "--seed N --runs N --app NAME --csv)", argv[i]);
        }
    }
    return opt;
}

std::vector<std::string>
selectedApps(const Options &opt)
{
    if (opt.only.empty())
        return workloads::appNames();
    return {opt.only};
}

core::RunConfig
configFor(const workloads::AppModel &app, core::RunMode mode,
          const Options &opt)
{
    core::RunConfig cfg;
    cfg.mode = mode;
    cfg.machine = app.machine;
    cfg.machine.seed = opt.seed;
    return cfg;
}

core::RunResult
runApp(const workloads::AppModel &app, core::RunMode mode,
       const Options &opt)
{
    return core::runProgram(app.program, configFor(app, mode, opt));
}

} // namespace txrace::bench
