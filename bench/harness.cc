#include "harness.hh"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "core/runmode.hh"
#include "support/log.hh"
#include "telemetry/json.hh"

namespace txrace::bench {

namespace {

/** One machine-readable result row (--json output). */
struct ResultRow
{
    std::string app;
    std::string mode;
    uint64_t seed = 0;
    uint32_t workers = 0;
    uint64_t scale = 0;
    uint64_t steps = 0;
    uint64_t totalCost = 0;
    uint64_t races = 0;
    double wallMs = 0.0;
    /** Key counters (name -> value), in StatSet name order. */
    std::vector<std::pair<std::string, uint64_t>> counters;
};

/** Rows accumulated across runApp calls, flushed at exit. */
std::vector<ResultRow> g_rows;
std::string g_jsonPath;

void
flushRows()
{
    if (g_jsonPath.empty())
        return;
    std::ofstream out(g_jsonPath);
    if (!out) {
        warn("bench: cannot write %s", g_jsonPath.c_str());
        return;
    }
    telemetry::JsonWriter w(out);
    w.beginArray();
    for (const ResultRow &row : g_rows) {
        w.beginObject();
        w.field("app", row.app);
        w.field("mode", row.mode);
        w.field("seed", row.seed);
        w.field("workers", static_cast<uint64_t>(row.workers));
        w.field("scale", row.scale);
        w.field("steps", row.steps);
        w.field("total_cost", row.totalCost);
        w.field("races", row.races);
        w.field("wall_ms", row.wallMs);
        w.key("counters");
        w.beginObject();
        for (const auto &[name, value] : row.counters)
            w.field(name, value);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    out << "\n";
}

/** The counters worth a machine-readable row (full dumps come from
 *  txrace_run --metrics-json). */
constexpr const char *kKeyCounters[] = {
    "tx.begins",
    "tx.committed",
    "tx.abort.conflict",
    "tx.abort.capacity",
    "tx.abort.unknown",
    "txrace.slow_regions",
    "txrace.loop_cuts",
    "machine.steps",
    "machine.rollbacks",
};

void
recordRow(const workloads::AppModel &app, core::RunMode mode,
          const Options &opt, const core::RunResult &result,
          double wall_ms)
{
    if (g_jsonPath.empty())
        return;
    ResultRow row;
    row.app = app.name;
    row.mode = core::runModeName(mode);
    row.seed = opt.seed;
    row.workers = opt.workers;
    row.scale = opt.scale;
    row.steps = result.error.stepsExecuted;
    row.totalCost = result.totalCost;
    row.races = result.races.count();
    row.wallMs = wall_ms;
    for (const char *name : kKeyCounters) {
        uint64_t v = result.stats.get(name);
        if (v)
            row.counters.emplace_back(name, v);
    }
    g_rows.push_back(std::move(row));
}

} // namespace

Options
parseOptions(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        auto want = [&](const char *flag) -> const char * {
            if (std::strcmp(argv[i], flag) != 0)
                return nullptr;
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
            return argv[++i];
        };
        if (const char *v = want("--workers")) {
            opt.workers = static_cast<uint32_t>(std::strtoul(
                v, nullptr, 10));
        } else if (const char *v2 = want("--scale")) {
            opt.scale = std::strtoull(v2, nullptr, 10);
        } else if (const char *v3 = want("--seed")) {
            opt.seed = std::strtoull(v3, nullptr, 10);
        } else if (const char *vr = want("--runs")) {
            opt.runs = static_cast<uint32_t>(
                std::strtoul(vr, nullptr, 10));
        } else if (const char *v4 = want("--app")) {
            opt.only = v4;
        } else if (const char *vj = want("--json")) {
            opt.jsonPath = vj;
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opt.csv = true;
        } else {
            fatal("unknown option '%s' (use --workers N --scale N "
                  "--seed N --runs N --app NAME --csv --json FILE)",
                  argv[i]);
        }
    }
    if (!opt.jsonPath.empty() && g_jsonPath.empty()) {
        g_jsonPath = opt.jsonPath;
        std::atexit(flushRows);
    }
    return opt;
}

std::vector<std::string>
selectedApps(const Options &opt)
{
    if (opt.only.empty())
        return workloads::appNames();
    return {opt.only};
}

core::RunConfig
configFor(const workloads::AppModel &app, core::RunMode mode,
          const Options &opt)
{
    core::RunConfig cfg;
    cfg.mode = mode;
    cfg.machine = app.machine;
    cfg.machine.seed = opt.seed;
    return cfg;
}

core::RunResult
runApp(const workloads::AppModel &app, core::RunMode mode,
       const Options &opt)
{
    auto t0 = std::chrono::steady_clock::now();
    core::RunResult result =
        core::runProgram(app.program, configFor(app, mode, opt));
    auto t1 = std::chrono::steady_clock::now();
    double wall_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    recordRow(app, mode, opt, result, wall_ms);
    return result;
}

} // namespace txrace::bench
