/**
 * @file
 * google-benchmark microbenchmarks of the core substrates: HTM
 * engine conflict checking, vector-clock operations, FastTrack
 * shadow checks, and end-to-end interpreter throughput. These
 * measure the *simulator's* own performance (real wall-clock), not
 * virtual time — useful for keeping the experiment harnesses fast.
 */

#include <benchmark/benchmark.h>

#include "core/driver.hh"
#include "detector/fasttrack.hh"
#include "htm/htm.hh"
#include "ir/builder.hh"
#include "support/rng.hh"

using namespace txrace;

namespace {

void
BM_HtmAccess(benchmark::State &state)
{
    htm::HtmEngine engine;
    engine.begin(0);
    engine.begin(1);
    Rng rng(7);
    uint64_t distinct_lines = static_cast<uint64_t>(state.range(0));
    for (auto _ : state) {
        ir::Addr addr = rng.below(distinct_lines) * 64;
        auto res = engine.access(0, addr, rng.chance(0.3));
        benchmark::DoNotOptimize(res.victims.data());
        if (res.selfCapacity) {
            engine.begin(0);
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HtmAccess)->Arg(16)->Arg(256);

void
BM_VectorClockJoin(benchmark::State &state)
{
    detector::VectorClock a, b;
    for (Tid t = 0; t < static_cast<Tid>(state.range(0)); ++t) {
        a.set(t, t * 3 + 1);
        b.set(t, t * 5 + 2);
    }
    for (auto _ : state) {
        a.join(b);
        benchmark::DoNotOptimize(a.get(0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VectorClockJoin)->Arg(4)->Arg(16);

void
BM_FastTrackCheck(benchmark::State &state)
{
    detector::HbDetector det;
    det.rootThread(0);
    det.threadCreated(0, 1);
    Rng rng(11);
    for (auto _ : state) {
        ir::Addr addr = rng.below(4096) * 8;
        Tid t = static_cast<Tid>(rng.below(2));
        if (rng.chance(0.5))
            det.write(t, addr, 1);
        else
            det.read(t, addr, 2);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastTrackCheck);

void
BM_EndToEndTxRace(benchmark::State &state)
{
    ir::ProgramBuilder b;
    ir::Addr table = b.alloc("t", 1024 * 8);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(50, [&] {
        b.loop(8, [&] {
            b.load(ir::AddrExpr::randomIn(table, 1024, 8));
            b.compute(2);
        });
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    ir::Program prog = b.build();

    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    uint64_t seed = 1;
    for (auto _ : state) {
        cfg.machine.seed = seed++;
        core::RunResult r = core::runProgram(prog, cfg);
        benchmark::DoNotOptimize(r.totalCost);
    }
    state.SetItemsProcessed(state.iterations() * 50 * 8 * 4);
}
BENCHMARK(BM_EndToEndTxRace);

} // namespace

BENCHMARK_MAIN();
