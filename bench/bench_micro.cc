/**
 * @file
 * google-benchmark microbenchmarks of the core substrates: HTM
 * engine conflict checking, vector-clock operations, FastTrack
 * shadow checks, and end-to-end interpreter throughput. These
 * measure the *simulator's* own performance (real wall-clock), not
 * virtual time — useful for keeping the experiment harnesses fast.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/driver.hh"
#include "detector/fasttrack.hh"
#include "htm/htm.hh"
#include "ir/builder.hh"
#include "support/rng.hh"
#include "workloads/workloads.hh"

using namespace txrace;

namespace {

void
BM_HtmAccess(benchmark::State &state)
{
    htm::HtmEngine engine;
    engine.begin(0);
    engine.begin(1);
    Rng rng(7);
    uint64_t distinct_lines = static_cast<uint64_t>(state.range(0));
    for (auto _ : state) {
        ir::Addr addr = rng.below(distinct_lines) * 64;
        auto res = engine.access(0, addr, rng.chance(0.3));
        benchmark::DoNotOptimize(res.victims.data());
        if (res.selfCapacity) {
            engine.begin(0);
        }
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HtmAccess)->Arg(16)->Arg(256);

/**
 * Engine-level conflict-detection benchmarks. `bench_compare.py`
 * gates on these — the conflict-free cases measure the per-access
 * cost as a function of in-flight transaction count (the directory's
 * whole point is making it flat), the conflict-heavy case measures
 * abort processing, and the reuse pair measures what the owned-line
 * filter saves on repeat accesses to held lines.
 */
void
runConflictFree(benchmark::State &state, bool filter)
{
    htm::HtmConfig cfg;
    cfg.accessFilter = filter;
    htm::HtmEngine engine(cfg);
    const uint32_t txs = static_cast<uint32_t>(state.range(0));
    for (Tid t = 0; t < txs; ++t)
        engine.begin(t);
    // Each in-flight transaction cycles a 3:1 read:write mix over its
    // own disjoint 32-line region — the footprint scale and store
    // ratio of a loop-cut transaction. No conflicts, no capacity
    // pressure, steady state after the first lap.
    constexpr uint64_t kLines = 32;
    Tid t = 0;
    uint64_t lap = 0;
    for (auto _ : state) {
        uint64_t line = (t + 1) * 4096 + lap;
        auto res = engine.access(t, line * 64, (lap & 3) == 3);
        benchmark::DoNotOptimize(res.selfCapacity);
        if (++t == txs) {
            t = 0;
            if (++lap == kLines)
                lap = 0;
        }
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_HtmDirConflictFree(benchmark::State &state)
{
    // The 32-line stride defeats the 16-entry filter on purpose: this
    // measures the probe path (plus a filter miss), not filter hits.
    runConflictFree(state, true);
}
BENCHMARK(BM_HtmDirConflictFree)->Arg(1)->Arg(4)->Arg(8);

/**
 * Line-reuse-heavy stream: each transaction cycles over 8 lines of
 * its own, so after the first lap every access hits a line the
 * transaction already holds in the required mode. With the filter
 * these accesses skip the directory probe entirely; without it each
 * pays the full probe. The gate in BENCH_elision.json holds the
 * filtered case strictly faster.
 */
void
runLineReuse(benchmark::State &state, bool filter)
{
    htm::HtmConfig cfg;
    cfg.accessFilter = filter;
    htm::HtmEngine engine(cfg);
    const uint32_t txs = static_cast<uint32_t>(state.range(0));
    for (Tid t = 0; t < txs; ++t)
        engine.begin(t);
    constexpr uint64_t kLines = 8;  // < filter size: all-hit regime
    Tid t = 0;
    uint64_t lap = 0;
    for (auto _ : state) {
        uint64_t line = (t + 1) * 4096 + lap;
        auto res = engine.access(t, line * 64, (lap & 3) == 3);
        benchmark::DoNotOptimize(res.selfCapacity);
        if (++t == txs) {
            t = 0;
            if (++lap == kLines)
                lap = 0;
        }
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_HtmFilterReuse(benchmark::State &state)
{
    runLineReuse(state, true);
}
BENCHMARK(BM_HtmFilterReuse)->Arg(8);

void
BM_HtmNoFilterReuse(benchmark::State &state)
{
    runLineReuse(state, false);
}
BENCHMARK(BM_HtmNoFilterReuse)->Arg(8);

void
runConflictHeavy(benchmark::State &state)
{
    htm::HtmConfig cfg;
    cfg.maxConcurrentTx = 8;
    htm::HtmEngine engine(cfg);
    constexpr Tid kReaders = 8;
    for (auto _ : state) {
        // Eight readers pile onto one line; a non-transactional write
        // then aborts all of them at once (requester-wins), and the
        // next round re-begins from empty slots.
        for (Tid t = 0; t < kReaders; ++t) {
            engine.begin(t);
            engine.access(t, 0x8000, false);
        }
        auto res = engine.access(99, 0x8000, true);
        benchmark::DoNotOptimize(res.victims.data());
    }
    state.SetItemsProcessed(state.iterations() * (kReaders + 1));
}

void
BM_HtmDirConflictHeavy(benchmark::State &state)
{
    runConflictHeavy(state);
}
BENCHMARK(BM_HtmDirConflictHeavy);

void
BM_VectorClockJoin(benchmark::State &state)
{
    detector::VectorClock a, b;
    for (Tid t = 0; t < static_cast<Tid>(state.range(0)); ++t) {
        a.set(t, t * 3 + 1);
        b.set(t, t * 5 + 2);
    }
    for (auto _ : state) {
        a.join(b);
        benchmark::DoNotOptimize(a.get(0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VectorClockJoin)->Arg(4)->Arg(16);

void
BM_FastTrackCheck(benchmark::State &state)
{
    detector::HbDetector det;
    det.rootThread(0);
    det.threadCreated(0, 1);
    Rng rng(11);
    for (auto _ : state) {
        ir::Addr addr = rng.below(4096) * 8;
        Tid t = static_cast<Tid>(rng.below(2));
        if (rng.chance(0.5))
            det.write(t, addr, 1);
        else
            det.read(t, addr, 2);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FastTrackCheck);

/**
 * Same-epoch hot stream: two threads hammer one write address and one
 * read address each, with a stable instruction id and no intervening
 * synchronization — exactly the shape the FastTrack same-epoch fast
 * path short-circuits. The Off variant runs the identical stream with
 * the fast path disabled; the gap is what the fast path saves.
 */
void
runFastTrackEpochHot(benchmark::State &state, bool fastPath)
{
    detector::DetectorConfig cfg;
    cfg.epochFastPath = fastPath;
    detector::HbDetector det(cfg);
    det.rootThread(0);
    det.threadCreated(0, 1);
    uint64_t i = 0;
    for (auto _ : state) {
        Tid t = static_cast<Tid>(i & 1);
        // The +8 keeps the read and write granules in different
        // direct-mapped cell-cache slots (both addresses & 63 would
        // otherwise collide and thrash the cache).
        if (i & 2)
            det.write(t, 0x1008 + t * 64, 1);
        else
            det.read(t, 0x2000 + t * 64, 2);
        ++i;
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_FastTrackEpochHot(benchmark::State &state)
{
    runFastTrackEpochHot(state, true);
}
BENCHMARK(BM_FastTrackEpochHot);

void
BM_FastTrackEpochHotOff(benchmark::State &state)
{
    runFastTrackEpochHot(state, false);
}
BENCHMARK(BM_FastTrackEpochHotOff);

void
BM_EndToEndTxRace(benchmark::State &state)
{
    ir::ProgramBuilder b;
    ir::Addr table = b.alloc("t", 1024 * 8);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(50, [&] {
        b.loop(8, [&] {
            b.load(ir::AddrExpr::randomIn(table, 1024, 8));
            b.compute(2);
        });
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 4);
    b.joinAll();
    b.endFunction();
    ir::Program prog = b.build();

    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    uint64_t seed = 1;
    for (auto _ : state) {
        cfg.machine.seed = seed++;
        core::RunResult r = core::runProgram(prog, cfg);
        benchmark::DoNotOptimize(r.totalCost);
    }
    state.SetItemsProcessed(state.iterations() * 50 * 8 * 4);
}
BENCHMARK(BM_EndToEndTxRace);

/**
 * End-to-end elision gate: a redundancy-heavy workload (dominated
 * re-loads of a shared cell, granule-aligned per-thread slots, tight
 * line reuse) run with the full elision stack on vs off. This is the
 * headline number for BENCH_elision.json — the stack must make the
 * whole pipeline measurably faster on the streams it targets.
 */
void
runEndToEndElide(benchmark::State &state, bool elide)
{
    ir::ProgramBuilder b;
    ir::Addr shared = b.alloc("s", 64, 64);
    ir::Addr flag = b.alloc("flag", 64, 64);
    // Workers are tids 1..8; perThread indexes by tid, so slot 8
    // reaches slots + 8*64 + 8 — size for ten lines.
    ir::Addr slots = b.alloc("slots", 10 * 64, 64);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(50, [&] {
        b.loop(8, [&] {
            b.load(ir::AddrExpr::absolute(shared));
            b.load(ir::AddrExpr::absolute(shared));
            b.load(ir::AddrExpr::absolute(shared));
            b.load(ir::AddrExpr::absolute(shared));
            b.store(ir::AddrExpr::perThread(slots, 64));
            b.load(ir::AddrExpr::perThread(slots, 64));
            b.store(ir::AddrExpr::perThread(slots, 64));
            // Contended flag: forces conflict aborts and therefore
            // slow-path episodes, where the dominated loads and
            // privatized slots save real detector work — seven
            // accesses, two surviving elision.
            b.store(ir::AddrExpr::absolute(flag));
            b.compute(2);
        });
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 8);
    b.joinAll();
    b.endFunction();
    ir::Program prog = b.build();

    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    if (!elide) {
        cfg.passes.elide.enabled = false;
        cfg.machine.htm.accessFilter = false;
        cfg.machine.det.epochFastPath = false;
    }
    uint64_t seed = 1;
    for (auto _ : state) {
        cfg.machine.seed = seed++;
        core::RunResult r = core::runProgram(prog, cfg);
        benchmark::DoNotOptimize(r.totalCost);
    }
    state.SetItemsProcessed(state.iterations() * 50 * 8 * 8);
}

void
BM_EndToEndElide(benchmark::State &state)
{
    runEndToEndElide(state, true);
}
BENCHMARK(BM_EndToEndElide);

void
BM_EndToEndNoElide(benchmark::State &state)
{
    runEndToEndElide(state, false);
}
BENCHMARK(BM_EndToEndNoElide);

/**
 * Flight-recorder overhead gate on the apache-stream scenario: the
 * planted races mean every run takes the full pipeline including
 * race-time forensics capture, and the streaming access pattern puts
 * the recorder's masked store on the hottest path. The gate in
 * BENCH_flightrec.json holds FlightRec ≥ 0.97x NoFlightRec (≤3%
 * overhead); the compiled-out build (TXRACE_FLIGHTREC=OFF) is
 * zero-delta by construction — record() is an empty inline body.
 */
void
runEndToEndFlightRec(benchmark::State &state, bool flight)
{
    workloads::WorkloadParams params;
    params.calibrate = false;
    workloads::AppModel app =
        workloads::makeApp("apache-stream", params);
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    cfg.machine = app.machine;
    cfg.machine.recordFlight = flight;
    uint64_t seed = 1;
    for (auto _ : state) {
        cfg.machine.seed = seed++;
        core::RunResult r = core::runProgram(app.program, cfg);
        benchmark::DoNotOptimize(r.totalCost);
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_EndToEndFlightRec(benchmark::State &state)
{
    runEndToEndFlightRec(state, true);
}
BENCHMARK(BM_EndToEndFlightRec);

void
BM_EndToEndNoFlightRec(benchmark::State &state)
{
    runEndToEndFlightRec(state, false);
}
BENCHMARK(BM_EndToEndNoFlightRec);

/**
 * Same gate on the reuse-heavy probe (the elision benchmark's
 * program): tight line reuse keeps per-access work minimal, which is
 * the worst case for a per-access recorder — any overhead shows up
 * largest here.
 */
void
runReuseFlightRec(benchmark::State &state, bool flight)
{
    ir::ProgramBuilder b;
    ir::Addr shared = b.alloc("s", 64, 64);
    ir::Addr slots = b.alloc("slots", 10 * 64, 64);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(50, [&] {
        b.loop(8, [&] {
            b.load(ir::AddrExpr::absolute(shared));
            b.load(ir::AddrExpr::absolute(shared));
            b.store(ir::AddrExpr::perThread(slots, 64));
            b.load(ir::AddrExpr::perThread(slots, 64));
            b.compute(2);
        });
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 8);
    b.joinAll();
    b.endFunction();
    ir::Program prog = b.build();

    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    cfg.machine.recordFlight = flight;
    uint64_t seed = 1;
    for (auto _ : state) {
        cfg.machine.seed = seed++;
        core::RunResult r = core::runProgram(prog, cfg);
        benchmark::DoNotOptimize(r.totalCost);
    }
    state.SetItemsProcessed(state.iterations() * 50 * 8 * 8);
}

void
BM_ReuseFlightRec(benchmark::State &state)
{
    runReuseFlightRec(state, true);
}
BENCHMARK(BM_ReuseFlightRec);

void
BM_ReuseNoFlightRec(benchmark::State &state)
{
    runReuseFlightRec(state, false);
}
BENCHMARK(BM_ReuseNoFlightRec);

/**
 * Windowed-vs-region slow path on a conflict-heavy probe: long
 * transactions of useful disjoint work (random table reads,
 * per-thread slots) that all cross one contended flag. Every flag
 * collision costs region mode a broadcast demotion — the whole
 * remaining region of all eight threads runs software-checked —
 * while window mode replays just the logged window and resumes the
 * fast path.
 *
 * Unlike the other end-to-end pairs this one gates *simulated*
 * overhead, not harness wall time: each iteration reports the run's
 * modeled cost as manual time, so items/sec is work per unit of
 * modeled overhead — deterministic for fixed seeds, immune to CI
 * machine noise, and exactly the quantity the windowed repair
 * optimizes. The gate in BENCH_slowpath.json holds Window ≥ 1.3x
 * Region on this shape; this is the O(region) -> O(window) headline
 * number (DESIGN.md §8).
 */
void
runEndToEndSlowpath(benchmark::State &state,
                    core::SlowPathKind slowpath)
{
    ir::ProgramBuilder b;
    ir::Addr flag = b.alloc("flag", 64, 64);
    ir::Addr table = b.alloc("t", 1024 * 8);
    ir::Addr slots = b.alloc("slots", 10 * 64, 64);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(40, [&] {
        b.loop(24, [&] {
            b.load(ir::AddrExpr::randomIn(table, 1024, 8));
            b.store(ir::AddrExpr::perThread(slots, 64));
        });
        // One contended store per region: transactions overlapping
        // on it conflict, and the two repair strategies diverge.
        b.store(ir::AddrExpr::absolute(flag));
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 8);
    b.joinAll();
    b.endFunction();
    ir::Program prog = b.build();

    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    cfg.slowpath = slowpath;
    uint64_t seed = 1;
    for (auto _ : state) {
        cfg.machine.seed = seed++;
        core::RunResult r = core::runProgram(prog, cfg);
        state.SetIterationTime(static_cast<double>(r.totalCost) *
                               1e-9);
    }
    state.SetItemsProcessed(state.iterations() * 40 * 24 * 8);
}

void
BM_EndToEndSlowpathWindow(benchmark::State &state)
{
    runEndToEndSlowpath(state, core::SlowPathKind::Window);
}
BENCHMARK(BM_EndToEndSlowpathWindow)->UseManualTime();

void
BM_EndToEndSlowpathRegion(benchmark::State &state)
{
    runEndToEndSlowpath(state, core::SlowPathKind::Region);
}
BENCHMARK(BM_EndToEndSlowpathRegion)->UseManualTime();

} // namespace

/**
 * Entry point with one convenience over BENCHMARK_MAIN: `--json FILE`
 * expands to `--benchmark_out=FILE --benchmark_out_format=json`, the
 * spelling every other harness binary in bench/ uses.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    args.emplace_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            args.push_back("--benchmark_out=" +
                           std::string(argv[++i]));
            args.emplace_back("--benchmark_out_format=json");
        } else {
            args.push_back(std::move(a));
        }
    }
    std::vector<char *> cargs;
    cargs.reserve(args.size());
    for (std::string &a : args)
        cargs.push_back(a.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
