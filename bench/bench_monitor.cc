/**
 * @file
 * Monitor-mode harness: the budget-versus-recall trade on the
 * sustained server soak.
 *
 * The apache-stream scenario is run once without a budget and then
 * under `--monitor` at a sweep of budget percentages. For each point
 * the table reports total virtual cost, the overhead ratio against
 * the native Base spend, the worst complete window's overhead next to
 * its hard allowance, and recall against the planted ground truth.
 * The headline claim: the budget holds in EVERY window at every
 * sweep point, and tightening it sheds recall gradually — never
 * precision, never the budget.
 *
 *   bench_monitor [--workers N] [--seed N] [--csv] [--json FILE]
 */

#include <algorithm>
#include <iostream>
#include <set>
#include <string>

#include "core/fingerprint.hh"
#include "harness.hh"
#include "support/log.hh"
#include "support/table.hh"

using namespace txrace;

namespace {

std::set<std::string>
labels(const workloads::AppModel &app, const core::RunResult &r)
{
    std::set<std::string> out;
    for (const auto &[sig, race] :
         core::fingerprintedRaces(app.program, r.races))
        out.insert(sig.label);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    workloads::WorkloadParams params;
    params.nWorkers = opt.workers;
    params.scale = opt.scale;
    params.calibrate = true;
    workloads::AppModel app =
        workloads::makeApp("apache-stream", params);

    std::set<std::string> truth;
    for (const workloads::RaceLabel &label : app.groundTruth)
        truth.insert(core::raceLabelKey(label.a, label.b));

    const double budgets[] = {0.0, 2.0, 5.0, 10.0, 20.0};
    Table table({"budget", "cost", "overhead", "worst win", "allowed",
                 "hard-over", "cuts", "skips", "recall", "false pos"});

    bool all_held = true;
    bool all_precise = true;
    for (double pct : budgets) {
        core::RunConfig cfg =
            bench::configFor(app, core::RunMode::TxRaceProfLoopcut,
                             opt);
        cfg.governor.enabled = true;
        if (pct > 0.0) {
            cfg.budget.enabled = true;
            cfg.budget.budgetPct = pct;
        }
        core::RunResult r = core::runProgram(app.program, cfg);
        if (!r.error.ok()) {
            std::cerr << "budget " << pct << "%: abnormal end: "
                      << sim::runErrorKindName(r.error.kind) << "\n";
            return 1;
        }

        uint64_t base =
            r.buckets[static_cast<size_t>(sim::Bucket::Base)];
        uint64_t worst = 0, hard_over = 0;
        for (const core::BudgetWindow &w : r.budget.windows) {
            worst = std::max(worst, w.overhead);
            hard_over += w.hardOver ? 1 : 0;
        }
        uint64_t allowed = static_cast<uint64_t>(
            r.budget.budgetPct / 100.0 *
            static_cast<double>(r.budget.windowBase));

        std::set<std::string> found = labels(app, r);
        uint64_t false_pos = 0;
        for (const std::string &l : found)
            false_pos += truth.count(l) ? 0 : 1;
        double recall = truth.empty()
            ? 1.0
            : static_cast<double>(found.size() - false_pos) /
                  static_cast<double>(truth.size());

        // Below ~3% the un-gateable floor (sync tracking, gate
        // branches) alone can breach a window; 0.5% ends in a
        // structured Budget error. The compliance claim is made at
        // the acceptance point and above.
        if (pct >= 5.0 && hard_over > 0)
            all_held = false;
        if (false_pos > 0)
            all_precise = false;

        table.newRow();
        table.cell(pct > 0.0 ? strprintf("%.0f%%", pct)
                             : std::string("off"));
        table.cell(r.totalCost);
        table.cellFactor(base == 0
                             ? 0.0
                             : static_cast<double>(r.totalCost) /
                                   static_cast<double>(base));
        table.cell(pct > 0.0 ? strprintf("%llu",
                                         (unsigned long long)worst)
                             : std::string("-"));
        table.cell(pct > 0.0 ? strprintf("%llu",
                                         (unsigned long long)allowed)
                             : std::string("-"));
        table.cell(hard_over);
        table.cell(r.budget.siteCuts);
        table.cell(r.budget.sampledSkips);
        table.cell(recall, 2);
        table.cell(false_pos);
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::cout << "\nverdict: budget "
              << (all_held ? "held in every window at >=5%"
                           : "was EXCEEDED at >=5%") << ", detection "
              << (all_precise ? "invented no races"
                              : "REPORTED FALSE POSITIVES") << "\n";
    return all_held && all_precise ? 0 : 1;
}
