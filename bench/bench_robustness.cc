/**
 * @file
 * Robustness harness: overhead and recall of the TxRace runtime,
 * calm versus under an injected HTM pathology storm, with the
 * adaptive fallback governor off and on.
 *
 * For every racy pattern in the concurrency-bug catalog, a fault-free
 * TSan run defines the reference race set; TxRace-DynLoopcut is then
 * run calm and under the "interrupt-storm" and "chaos" scenarios,
 * each with the governor disabled (the paper's unconditional-fallback
 * runtime) and enabled. The headline numbers are the storm totals:
 * the governor must cut total cost without giving up recall.
 *
 *   bench_robustness [--seed N] [--runs N] [--csv]
 */

#include <iostream>

#include "fault/fault.hh"
#include "harness.hh"
#include "support/table.hh"
#include "workloads/patterns.hh"

using namespace txrace;

namespace {

struct Cell
{
    uint64_t cost = 0;
    uint64_t hits = 0;  ///< reference races found
    uint64_t demotions = 0;
};

core::RunResult
runPattern(const ir::Program &prog, uint64_t seed,
           const std::string &scenario, uint64_t horizon, bool governor)
{
    core::RunConfig cfg;
    cfg.mode = core::RunMode::TxRaceDynLoopcut;
    cfg.machine.seed = seed;
    if (scenario != "none")
        cfg.machine.faults = fault::makeScenario(scenario, horizon);
    cfg.governor.enabled = governor;
    return core::runProgram(prog, cfg);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);
    const std::string scenarios[] = {"none", "interrupt-storm",
                                     "chaos"};

    Table table({"pattern", "scenario", "cost gov-off", "cost gov-on",
                 "saved", "recall off", "recall on", "demotions"});

    // Aggregates per scenario: [scenario][gov].
    Cell total[3][2];
    uint64_t reference_total = 0;

    for (workloads::Pattern &pat : workloads::buildPatternCatalog()) {
        if (pat.trueRaces == 0)
            continue;

        for (size_t s = 0; s < 3; ++s) {
            uint64_t ref_count = 0;
            Cell agg[2];
            for (uint32_t r = 0; r < opt.runs; ++r) {
                uint64_t seed = opt.seed + r;

                // Fault-free TSan defines ground truth at this seed.
                core::RunConfig tsan_cfg;
                tsan_cfg.mode = core::RunMode::TSan;
                tsan_cfg.machine.seed = seed;
                core::RunResult tsan =
                    core::runProgram(pat.program, tsan_cfg);
                ref_count += tsan.races.count();

                // Size the episode windows from the run itself: a
                // calm run's step count is the natural horizon.
                core::RunResult calm = runPattern(
                    pat.program, seed, "none", 1, false);
                uint64_t horizon =
                    std::max<uint64_t>(calm.stats.get("machine.steps"),
                                       100);

                for (int g = 0; g < 2; ++g) {
                    core::RunResult res =
                        runPattern(pat.program, seed, scenarios[s],
                                   horizon, g == 1);
                    agg[g].cost += res.totalCost;
                    agg[g].hits +=
                        res.races.intersectCount(tsan.races);
                    agg[g].demotions +=
                        res.stats.get("txrace.gov.demotions");
                }
            }
            for (int g = 0; g < 2; ++g) {
                total[s][g].cost += agg[g].cost;
                total[s][g].hits += agg[g].hits;
                total[s][g].demotions += agg[g].demotions;
            }
            if (s == 0)
                reference_total += ref_count;

            auto recall = [&](const Cell &c) {
                return ref_count == 0
                    ? 1.0
                    : static_cast<double>(c.hits) /
                          static_cast<double>(ref_count);
            };
            table.newRow();
            table.cell(pat.name);
            table.cell(scenarios[s]);
            table.cell(agg[0].cost);
            table.cell(agg[1].cost);
            table.cellFactor(agg[1].cost == 0
                                 ? 0.0
                                 : static_cast<double>(agg[0].cost) /
                                       static_cast<double>(agg[1].cost));
            table.cell(recall(agg[0]), 2);
            table.cell(recall(agg[1]), 2);
            table.cell(agg[1].demotions);
        }
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::cout << "\nsuite totals (" << opt.runs << " run(s), seed "
              << opt.seed << "):\n";
    for (size_t s = 0; s < 3; ++s) {
        const Cell &off = total[s][0];
        const Cell &on = total[s][1];
        double saved = on.cost == 0
            ? 0.0
            : static_cast<double>(off.cost) /
                  static_cast<double>(on.cost);
        std::cout.precision(2);
        std::cout << std::fixed << "  " << scenarios[s]
                  << ": cost gov-off " << off.cost << ", gov-on "
                  << on.cost << " (" << saved << "x), races gov-off "
                  << off.hits << "/" << reference_total
                  << ", gov-on " << on.hits << "/" << reference_total
                  << ", demotions " << on.demotions << "\n";
    }

    const Cell &storm_off = total[1][0];
    const Cell &storm_on = total[1][1];
    bool cheaper = storm_on.cost < storm_off.cost;
    bool no_recall_loss = storm_on.hits >= storm_off.hits;
    std::cout << "\nverdict under interrupt-storm: governor is "
              << (cheaper ? "cheaper" : "NOT cheaper") << " and "
              << (no_recall_loss ? "loses no recall"
                                 : "LOSES recall") << "\n";
    return cheaper && no_recall_loss ? 0 : 1;
}
