/**
 * @file
 * Service-layer microbenchmarks: what the fleet hunting service pays
 * to fold outcomes into the sharded aggregator, to collapse N shards
 * into the deterministic total, and to serialize/parse/union the
 * persistent findings store and checkpoint.
 *
 * `bench_compare.py` gates on the collapse pair: merging 16 shards
 * must stay in the same ballpark as merging 1 — each shard holds a
 * disjoint slice of the findings, so total merge work is constant in
 * N and any superlinear blowup is a regression in the shard-merge
 * path. The ingest benchmarks anchor the baseline-regression gate.
 */

#include <benchmark/benchmark.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/aggregate.hh"
#include "campaign/campaign.hh"
#include "campaign/shard.hh"
#include "core/fingerprint.hh"
#include "service/checkpoint.hh"
#include "service/store.hh"
#include "telemetry/json.hh"
#include "telemetry/jsonparse.hh"

using namespace txrace;
using namespace txrace::campaign;

namespace {

core::RaceSig
sig(const std::string &key)
{
    core::RaceSig s;
    s.hash = core::fnv1a64(key);
    s.key = key;
    s.label = key;
    s.a = "a:" + key;
    s.b = "b:" + key;
    return s;
}

/**
 * A synthetic campaign's worth of outcomes: @p jobs jobs across 8
 * apps, each reporting 2-3 races drawn from a pool of @p keys
 * distinct fingerprints. Heavy key reuse (the realistic case — a
 * fleet rediscovers the same races all day) exercises the dedup path
 * rather than map growth.
 */
std::vector<JobOutcome>
syntheticOutcomes(uint64_t jobs, uint64_t keys, uint64_t idBase = 0)
{
    std::vector<JobOutcome> out;
    out.reserve(jobs);
    for (uint64_t i = 0; i < jobs; ++i) {
        const uint64_t id = idBase + i;
        JobOutcome o;
        o.spec.id = id;
        o.spec.app = "app" + std::to_string(id % 8);
        o.spec.seed = 1000 + id;
        o.repro = "txrace_run --app " + o.spec.app;
        o.configDigest = 0xd1600 + id;
        o.txCommitted = 40 + id % 9;
        o.abortConflict = id % 5;
        FoundRace f;
        f.sig = sig(o.spec.app + "\x1dpair" +
                    std::to_string(id % keys));
        f.hits = 1 + id % 3;
        o.races.push_back(f);
        f.sig = sig(o.spec.app + "\x1dpair" +
                    std::to_string((id * 7 + 3) % keys));
        o.races.push_back(f);
        if (id % 2 == 0) {
            f.sig = sig(o.spec.app + "\x1dshared");
            f.hits = 2;
            o.races.push_back(f);
        }
        out.push_back(std::move(o));
    }
    return out;
}

CampaignConfig
identity()
{
    CampaignConfig cfg;
    cfg.apps = {"app0", "app1", "app2", "app3",
                "app4", "app5", "app6", "app7"};
    cfg.seedsPerApp = 8;
    cfg.masterSeed = 7;
    return cfg;
}

constexpr uint64_t kJobs = 512;
constexpr uint64_t kKeys = 64;

/** Single-thread fold of a fixed batch into N shards. */
void
BM_ServiceIngest(benchmark::State &state)
{
    const uint32_t shards = static_cast<uint32_t>(state.range(0));
    const std::vector<JobOutcome> batch =
        syntheticOutcomes(kJobs, kKeys);
    for (auto _ : state) {
        ShardedAggregator agg(shards);
        for (const JobOutcome &o : batch)
            benchmark::DoNotOptimize(agg.add(o));
        benchmark::DoNotOptimize(agg.runs());
    }
    state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_ServiceIngest)->Arg(1)->Arg(4)->Arg(16);

/**
 * Four threads folding disjoint quarters of the batch into one
 * shared aggregator — the service's actual contention shape. On a
 * single-core host the threads serialize and this only measures
 * lock traffic; the cross-shard-count comparison is informational,
 * not gated.
 */
void
BM_ServiceIngestContended(benchmark::State &state)
{
    const uint32_t shards = static_cast<uint32_t>(state.range(0));
    const std::vector<JobOutcome> batch =
        syntheticOutcomes(kJobs, kKeys);
    constexpr size_t kThreads = 4;
    for (auto _ : state) {
        ShardedAggregator agg(shards);
        std::vector<std::thread> threads;
        for (size_t t = 0; t < kThreads; ++t)
            threads.emplace_back([&agg, &batch, t] {
                const size_t chunk = batch.size() / kThreads;
                for (size_t i = t * chunk; i < (t + 1) * chunk; ++i)
                    agg.add(batch[i]);
            });
        for (std::thread &th : threads)
            th.join();
        benchmark::DoNotOptimize(agg.runs());
    }
    state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_ServiceIngestContended)->Arg(1)->Arg(16);

/**
 * Collapse N prefolded shards into the deterministic total. The
 * findings are disjoint across shards, so the merge work is constant
 * in N — `bench_compare.py` holds /16 within 2x of /1.
 */
void
BM_ShardCollapse(benchmark::State &state)
{
    const uint32_t shards = static_cast<uint32_t>(state.range(0));
    ShardedAggregator agg(shards);
    for (const JobOutcome &o : syntheticOutcomes(kJobs, kKeys))
        agg.add(o);
    for (auto _ : state) {
        Aggregator total = agg.collapse();
        benchmark::DoNotOptimize(total.runs());
    }
    state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_ShardCollapse)->Arg(1)->Arg(4)->Arg(16);

/** Serialize a populated findings store (the checkpoint hot half). */
void
BM_StoreSerialize(benchmark::State &state)
{
    service::FindingsStore store;
    store.campaign = identity();
    for (const JobOutcome &o : syntheticOutcomes(kJobs, kKeys))
        store.aggregate.add(o);
    for (auto _ : state) {
        std::ostringstream os;
        store.write(os);
        benchmark::DoNotOptimize(os.str().size());
    }
    state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_StoreSerialize);

/** Parse the same store back (resume and cross-host load path). */
void
BM_StoreParse(benchmark::State &state)
{
    service::FindingsStore store;
    store.campaign = identity();
    for (const JobOutcome &o : syntheticOutcomes(kJobs, kKeys))
        store.aggregate.add(o);
    std::ostringstream os;
    store.write(os);
    const std::string bytes = os.str();
    for (auto _ : state) {
        service::FindingsStore in;
        std::string error;
        if (!service::FindingsStore::parse(bytes, in, error))
            state.SkipWithError(error.c_str());
        benchmark::DoNotOptimize(in.aggregate.runs());
    }
    state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_StoreParse);

/** Cross-host union: merge two half-fleet stores. */
void
BM_StoreMerge(benchmark::State &state)
{
    service::FindingsStore a, b;
    a.campaign = b.campaign = identity();
    for (const JobOutcome &o : syntheticOutcomes(kJobs / 2, kKeys, 0))
        a.aggregate.add(o);
    for (const JobOutcome &o :
         syntheticOutcomes(kJobs / 2, kKeys, kJobs / 2))
        b.aggregate.add(o);
    for (auto _ : state) {
        service::FindingsStore total = a;
        std::string error;
        if (!total.merge(b, error))
            state.SkipWithError(error.c_str());
        benchmark::DoNotOptimize(total.aggregate.runs());
    }
    state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_StoreMerge);

/** Full checkpoint write+parse round trip (the cadence cost). */
void
BM_CheckpointRoundTrip(benchmark::State &state)
{
    service::Checkpoint ck;
    ck.campaign = identity();
    const std::vector<JobOutcome> batch =
        syntheticOutcomes(kJobs, kKeys);
    for (const JobOutcome &o : batch) {
        ck.aggregate.add(o);
        ck.history.push_back(service::OutcomeSummary::of(o));
    }
    ck.nextId = kJobs;
    ck.jobsTotal = kJobs;
    ck.roundsDone = 1;
    ck.strategyName = "sweep";
    ck.strategyState["done"] = 1;
    for (auto _ : state) {
        std::ostringstream os;
        ck.write(os);
        service::Checkpoint in;
        std::string error;
        if (!service::Checkpoint::parse(os.str(), in, error))
            state.SkipWithError(error.c_str());
        benchmark::DoNotOptimize(in.history.size());
    }
    state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_CheckpointRoundTrip);

} // namespace

/**
 * Entry point with one convenience over BENCHMARK_MAIN: `--json FILE`
 * expands to `--benchmark_out=FILE --benchmark_out_format=json`, the
 * spelling every other harness binary in bench/ uses.
 */
int
main(int argc, char **argv)
{
    std::vector<std::string> args;
    args.emplace_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--json" && i + 1 < argc) {
            args.push_back("--benchmark_out=" +
                           std::string(argv[++i]));
            args.emplace_back("--benchmark_out_format=json");
        } else {
            args.push_back(std::move(a));
        }
    }
    std::vector<char *> cargs;
    cargs.reserve(args.size());
    for (std::string &a : args)
        cargs.push_back(a.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
