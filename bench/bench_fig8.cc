/**
 * @file
 * Regenerates Figure 8 of the paper: TxRace runtime overhead with 2,
 * 4, and 8 worker threads, each normalized to the native execution
 * at the same thread count.
 *
 * The paper's key observation reproduced here: 8 worker threads
 * oversubscribe the 4 physical cores, so (hyperthreading-induced)
 * unknown aborts jump and several applications get markedly slower.
 */

#include <iostream>

#include "harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace txrace;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);
    const uint32_t thread_counts[] = {2, 4, 8};

    Table table({"application", "2 threads", "4 threads", "8 threads",
                 "unknown@2", "unknown@4", "unknown@8"});
    std::vector<std::vector<double>> ovh(3);
    std::vector<std::vector<double>> unknowns(3);

    for (const std::string &name : bench::selectedApps(opt)) {
        table.newRow();
        table.cell(name);
        std::vector<uint64_t> unk;
        std::vector<double> o;
        for (uint32_t w : thread_counts) {
            workloads::WorkloadParams params;
            params.nWorkers = w;
            params.scale = opt.scale;
            workloads::AppModel app = workloads::makeApp(name, params);

            core::RunResult native =
                bench::runApp(app, core::RunMode::Native, opt);
            core::RunResult txr = bench::runApp(
                app, core::RunMode::TxRaceProfLoopcut, opt);
            o.push_back(txr.overheadVs(native));
            unk.push_back(txr.stats.get("tx.abort.unknown"));
        }
        for (size_t i = 0; i < 3; ++i) {
            ovh[i].push_back(o[i]);
            unknowns[i].push_back(static_cast<double>(unk[i]) + 1.0);
        }
        table.cellFactor(o[0]);
        table.cellFactor(o[1]);
        table.cellFactor(o[2]);
        table.cell(unk[0]);
        table.cell(unk[1]);
        table.cell(unk[2]);
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\ngeomean overhead: 2t " << std::fixed;
    std::cout.precision(2);
    std::cout << geoMean(ovh[0]) << "x, 4t " << geoMean(ovh[1])
              << "x, 8t " << geoMean(ovh[2])
              << "x  (paper: 8-thread runs inflate unknown aborts "
                 "~5-9x over 2/4 threads)\n";
    std::cout << "geomean unknown aborts (+1): 2t "
              << geoMean(unknowns[0]) << ", 4t " << geoMean(unknowns[1])
              << ", 8t " << geoMean(unknowns[2]) << "\n";
    return 0;
}
