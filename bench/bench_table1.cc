/**
 * @file
 * Regenerates Table 1 of the paper: per-application transaction
 * statistics, detected races (TSan vs TxRace), and runtime overheads.
 *
 * Transaction counts are scaled down relative to the paper (the
 * paper's runs execute up to 160M transactions; see DESIGN.md), but
 * the qualitative structure is preserved: which abort classes
 * dominate where, who finds which races, and the overhead ordering.
 */

#include <iostream>

#include "harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace txrace;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    Table table({"application", "committed", "conflict", "capacity",
                 "unknown", "TSan-races", "TxRace-races", "TSan-ovh",
                 "TxRace-ovh", "paper-TSan", "paper-TxRace"});
    std::vector<double> tsan_ovh, txrace_ovh;

    for (const std::string &name : bench::selectedApps(opt)) {
        workloads::WorkloadParams params;
        params.nWorkers = opt.workers;
        params.scale = opt.scale;
        workloads::AppModel app = workloads::makeApp(name, params);

        // Like the paper, results can be averaged over several
        // trials (--runs N; the paper uses five). Races reported are
        // the per-run mean, as in the paper's race columns.
        double o_tsan = 0.0, o_txr = 0.0;
        uint64_t committed = 0, conflicts = 0, capacity = 0,
                 unknown = 0, tsan_races = 0, txr_races = 0;
        core::RunResult tsan, txr;
        for (uint32_t run = 0; run < opt.runs; ++run) {
            bench::Options ropt = opt;
            ropt.seed = opt.seed + run;
            core::RunResult native =
                bench::runApp(app, core::RunMode::Native, ropt);
            tsan = bench::runApp(app, core::RunMode::TSan, ropt);
            txr = bench::runApp(app, core::RunMode::TxRaceProfLoopcut,
                                ropt);
            o_tsan += tsan.overheadVs(native);
            o_txr += txr.overheadVs(native);
            committed += txr.stats.get("tx.committed");
            conflicts += txr.stats.get("tx.abort.conflict");
            capacity += txr.stats.get("tx.abort.capacity");
            unknown += txr.stats.get("tx.abort.unknown");
            tsan_races += tsan.races.count();
            txr_races += txr.races.count();
        }
        o_tsan /= opt.runs;
        o_txr /= opt.runs;
        committed /= opt.runs;
        conflicts /= opt.runs;
        capacity /= opt.runs;
        unknown /= opt.runs;
        tsan_races /= opt.runs;
        txr_races /= opt.runs;
        tsan_ovh.push_back(o_tsan);
        txrace_ovh.push_back(o_txr);

        table.newRow();
        std::string label = app.name;
        if (txr_races < tsan_races)
            label += " (*)";
        table.cell(label);
        table.cell(committed);
        table.cell(conflicts);
        table.cell(capacity);
        table.cell(unknown);
        table.cell(tsan_races);
        table.cell(txr_races);
        table.cellFactor(o_tsan);
        table.cellFactor(o_txr);
        table.cellFactor(app.paper.tsanOverhead);
        table.cellFactor(app.paper.txraceOverhead);
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);

    std::cout << "\ngeomean overhead: TSan " << std::fixed;
    std::cout.precision(2);
    std::cout << geoMean(tsan_ovh) << "x vs TxRace "
              << geoMean(txrace_ovh)
              << "x   (paper: 11.68x vs 4.65x)\n";
    return 0;
}
