/**
 * @file
 * Ablation studies the paper discusses but does not plot:
 *
 * 1. Ideal-HTM projection (§8.2): "if there is an ideal HTM such that
 *    a transaction aborts only if there is a data conflict ... the
 *    runtime overhead of TxRace would be improved significantly."
 *    We grant TxRace exactly that — unbounded capacity, no interrupt
 *    (unknown) aborts, a deterministic capacity boundary — and
 *    measure the gap to the commodity-HTM configuration.
 *
 * 2. Lockset baseline (§9): Eraser-style lockset detection is cheap
 *    and schedule-insensitive but ignores condvar/barrier ordering,
 *    producing false reports the TxRace slow path never does. For
 *    each application we count Eraser warnings that the
 *    happens-before ground truth refutes.
 */

#include <iostream>

#include "harness.hh"
#include "workloads/patterns.hh"
#include "ir/builder.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace txrace;

namespace {

/**
 * The canonical lockset false positive: barrier-ordered
 * double-buffering. Worker t fills cell t in phase one; its neighbor
 * reads that cell in phase two. The barrier orders the phases, so
 * there is no race — but no lock ever protects the cells, so
 * Eraser's candidate sets drain to empty and it warns anyway.
 */
ir::Program
doubleBufferScenario(uint32_t workers)
{
    ir::ProgramBuilder b;
    ir::Addr cells = b.alloc("cells", (workers + 2) * 64, 64);
    ir::FuncId worker = b.beginFunction("worker");
    b.loop(20, [&] {
        b.store(ir::AddrExpr::perThread(cells, 64), "fill own cell");
        b.barrier(0, workers);
        b.load(ir::AddrExpr::perThread(cells + 64, 64),
               "read neighbor cell");
        b.barrier(1, workers);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, workers);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    Table ideal({"application", "TxRace (commodity HTM)",
                 "TxRace (ideal HTM)", "capacity+unknown aborts"});
    Table lockset({"application", "TSan races", "Eraser warnings",
                   "false warnings", "Eraser ovh", "TxRace ovh"});
    Table hints({"application", "TxRace ovh", "with addr hints",
                 "races", "races w/ hints", "filtered checks"});
    std::vector<double> g_commodity, g_ideal, g_hints;

    for (const std::string &name : bench::selectedApps(opt)) {
        workloads::WorkloadParams params;
        params.nWorkers = opt.workers;
        params.scale = opt.scale;
        workloads::AppModel app = workloads::makeApp(name, params);

        core::RunResult native =
            bench::runApp(app, core::RunMode::Native, opt);
        core::RunResult txr =
            bench::runApp(app, core::RunMode::TxRaceProfLoopcut, opt);

        // Ideal HTM: conflict aborts remain, everything else vanishes.
        core::RunConfig icfg = bench::configFor(
            app, core::RunMode::TxRaceProfLoopcut, opt);
        icfg.machine.interruptPerStep = 0.0;
        icfg.machine.htm.capacityJitter = 0.0;
        icfg.machine.htm.l1Ways = 1u << 16;
        icfg.machine.htm.readSetMaxLines = 1u << 30;
        core::RunResult ideal_run =
            core::runProgram(app.program, icfg);

        g_commodity.push_back(txr.overheadVs(native));
        g_ideal.push_back(ideal_run.overheadVs(native));

        ideal.newRow();
        ideal.cell(app.name);
        ideal.cellFactor(txr.overheadVs(native));
        ideal.cellFactor(ideal_run.overheadVs(native));
        ideal.cell(txr.stats.get("tx.abort.capacity") +
                   txr.stats.get("tx.abort.unknown"));

        // Conflict-address hints (the paper's §9 TxIntro idea).
        core::RunConfig hcfg = bench::configFor(
            app, core::RunMode::TxRaceProfLoopcut, opt);
        hcfg.conflictAddressHints = true;
        core::RunResult hinted = core::runProgram(app.program, hcfg);
        g_hints.push_back(hinted.overheadVs(native));
        hints.newRow();
        hints.cell(app.name);
        hints.cellFactor(txr.overheadVs(native));
        hints.cellFactor(hinted.overheadVs(native));
        hints.cell(static_cast<uint64_t>(txr.races.count()));
        hints.cell(static_cast<uint64_t>(hinted.races.count()));
        hints.cell(hinted.stats.get("txrace.hint_filtered"));

        // Lockset comparison.
        core::RunResult tsan =
            bench::runApp(app, core::RunMode::TSan, opt);
        core::RunResult eraser =
            bench::runApp(app, core::RunMode::Eraser, opt);
        uint64_t confirmed = eraser.races.intersectCount(tsan.races);

        lockset.newRow();
        lockset.cell(app.name);
        lockset.cell(static_cast<uint64_t>(tsan.races.count()));
        lockset.cell(static_cast<uint64_t>(eraser.races.count()));
        lockset.cell(static_cast<uint64_t>(eraser.races.count()) -
                     confirmed);
        lockset.cellFactor(eraser.overheadVs(native));
        lockset.cellFactor(txr.overheadVs(native));
    }

    // §7: the paper instruments one hook for both paths ("it would be
    // ideal to clone the codes ... we leave this optimization as
    // future work"). Model the uncloned build by charging every
    // fast-path hook, and the cloned build (our default) at zero.
    {
        std::vector<double> uncloned, cloned;
        for (const std::string &name : bench::selectedApps(opt)) {
            workloads::WorkloadParams params;
            params.nWorkers = opt.workers;
            params.scale = opt.scale;
            workloads::AppModel app = workloads::makeApp(name, params);
            core::RunResult native =
                bench::runApp(app, core::RunMode::Native, opt);
            core::RunConfig cfg = bench::configFor(
                app, core::RunMode::TxRaceProfLoopcut, opt);
            cfg.machine.cost.fastHookCost = 2;
            core::RunResult u = core::runProgram(app.program, cfg);
            cfg.machine.cost.fastHookCost = 0;
            core::RunResult c = core::runProgram(app.program, cfg);
            uncloned.push_back(u.overheadVs(native));
            cloned.push_back(c.overheadVs(native));
        }
        std::cout << "=== Fast/slow path code cloning (paper §7) ==="
                  << "\ngeomean TxRace overhead: shared hooks "
                  << std::fixed;
        std::cout.precision(2);
        std::cout << geoMean(uncloned) << "x vs cloned paths "
                  << geoMean(cloned) << "x\n\n";
    }

    std::cout << "=== Ideal-HTM projection (paper §8.2) ===\n";
    if (opt.csv)
        ideal.printCsv(std::cout);
    else
        ideal.print(std::cout);
    std::cout << "\ngeomean: commodity " << std::fixed;
    std::cout.precision(2);
    std::cout << geoMean(g_commodity) << "x vs ideal "
              << geoMean(g_ideal) << "x\n\n";

    std::cout << "=== Conflict-address hints (paper §9, TxIntro) ===\n";
    if (opt.csv)
        hints.printCsv(std::cout);
    else
        hints.print(std::cout);
    std::cout << "\ngeomean: plain " << geoMean(g_commodity)
              << "x vs hinted " << geoMean(g_hints)
              << "x  (hinted slow episodes only re-check the "
                 "conflicting line)\n\n";

    std::cout << "=== Lockset (Eraser) baseline (paper §9) ===\n";
    if (opt.csv)
        lockset.printCsv(std::cout);
    else
        lockset.print(std::cout);
    std::cout << "\n(False warnings = Eraser reports the "
                 "happens-before ground truth refutes; TxRace "
                 "reports none by construction. The bundled "
                 "workloads lock what they share, so Eraser's blind "
                 "spot shows up in the scenario below instead.)\n";

    // Shadow-cell budget (§5): the paper configures TSan "to have
    // enough shadow cells to be sound"; stock TSan keeps N=4 and
    // evicts randomly. Measure the recall cost of small budgets on
    // the most read-shared application.
    {
        workloads::WorkloadParams params;
        params.nWorkers = opt.workers;
        params.scale = opt.scale;
        workloads::AppModel app = workloads::makeApp(
            opt.only.empty() ? "facesim" : opt.only, params);
        core::RunConfig cfg =
            bench::configFor(app, core::RunMode::TSan, opt);
        core::RunResult sound = core::runProgram(app.program, cfg);
        std::cout << "\n=== TSan shadow-cell budget (" << app.name
                  << ", §5) ===\n";
        std::cout << "unbounded (sound): " << sound.races.count()
                  << " races\n";
        for (uint32_t cells : {1u, 2u, 4u}) {
            cfg.machine.det.maxShadowCells = cells;
            core::RunResult r = core::runProgram(app.program, cfg);
            std::cout << cells << " shadow cell(s): "
                      << r.races.count() << " races, "
                      << r.stats.get("detector.evictions")
                      << " evictions\n";
        }
    }

    // RaceTM (§9): hardware-only reporting over the bug-pattern
    // catalog — fast, but line-granular, so false sharing false-flags.
    {
        Table rtm({"pattern", "true races", "TSan", "TxRace",
                   "RaceTM", "RaceTM verdict"});
        for (const std::string &name : workloads::patternNames()) {
            workloads::Pattern pat = workloads::makePattern(name);
            core::RunConfig cfg;
            cfg.machine.seed = opt.seed;
            cfg.machine.interruptPerStep = 0.0;
            cfg.mode = core::RunMode::TSan;
            core::RunResult tsan = core::runProgram(pat.program, cfg);
            cfg.mode = core::RunMode::TxRaceProfLoopcut;
            core::RunResult txr = core::runProgram(pat.program, cfg);
            cfg.mode = core::RunMode::RaceTM;
            core::RunResult rt = core::runProgram(pat.program, cfg);
            rtm.newRow();
            rtm.cell(pat.name);
            rtm.cell(static_cast<uint64_t>(pat.trueRaces));
            rtm.cell(static_cast<uint64_t>(tsan.races.count()));
            rtm.cell(static_cast<uint64_t>(txr.races.count()));
            rtm.cell(static_cast<uint64_t>(rt.races.count()));
            const char *verdict =
                rt.races.count() > 0 && pat.trueRaces == 0
                    ? "FALSE ALARM"
                    : (rt.races.count() < (pat.trueRaces ? 1u : 0u)
                           ? "miss"
                           : "ok");
            rtm.cell(std::string(verdict));
        }
        std::cout << "\n=== RaceTM hardware-only reporting "
                     "(paper §9) over the bug-pattern catalog ===\n";
        if (opt.csv)
            rtm.printCsv(std::cout);
        else
            rtm.print(std::cout);
    }

    // Barrier-ordered double buffering: race-free, yet lockset-flagged.
    {
        ir::Program prog = doubleBufferScenario(opt.workers);
        core::RunConfig cfg;
        cfg.machine.seed = opt.seed;
        cfg.mode = core::RunMode::TSan;
        core::RunResult tsan = core::runProgram(prog, cfg);
        cfg.mode = core::RunMode::Eraser;
        core::RunResult eraser = core::runProgram(prog, cfg);
        cfg.mode = core::RunMode::TxRaceProfLoopcut;
        core::RunResult txr = core::runProgram(prog, cfg);
        std::cout << "\n=== barrier-ordered double buffer (race-free)"
                     " ===\n"
                  << "TSan: " << tsan.races.count()
                  << " races, TxRace: " << txr.races.count()
                  << " races, Eraser: " << eraser.races.count()
                  << " FALSE warning(s)\n";
    }
    return 0;
}
