/**
 * @file
 * Regenerates Figure 7 of the paper: the TxRace runtime-overhead
 * breakdown per application, normalized to native execution — the
 * baseline work, the pure transaction-management cost (xbegin/xend,
 * TxFail read, fast-path hooks, happens-before tracking of sync
 * operations), and the cost of handling each abort class (wasted
 * transactional work plus the slow-path re-execution it triggers).
 *
 * The simulator attributes every cost unit to one of these buckets
 * online, so a single TxRace run per application yields the stack.
 */

#include <iostream>

#include "harness.hh"
#include "sim/costmodel.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace txrace;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    Table table({"application", "baseline", "xbegin/xend", "conflict",
                 "capacity", "unknown", "total"});
    std::vector<double> totals;

    for (const std::string &name : bench::selectedApps(opt)) {
        workloads::WorkloadParams params;
        params.nWorkers = opt.workers;
        params.scale = opt.scale;
        workloads::AppModel app = workloads::makeApp(name, params);

        core::RunResult native =
            bench::runApp(app, core::RunMode::Native, opt);
        core::RunResult txr =
            bench::runApp(app, core::RunMode::TxRaceProfLoopcut, opt);

        auto norm = [&](sim::Bucket bucket) {
            return static_cast<double>(
                       txr.buckets[static_cast<size_t>(bucket)]) /
                   static_cast<double>(native.totalCost);
        };
        double total = txr.overheadVs(native);
        totals.push_back(total);

        table.newRow();
        table.cell(app.name);
        table.cellFactor(norm(sim::Bucket::Base));
        table.cellFactor(norm(sim::Bucket::Txn));
        table.cellFactor(norm(sim::Bucket::Conflict));
        table.cellFactor(norm(sim::Bucket::Capacity));
        table.cellFactor(norm(sim::Bucket::Unknown));
        table.cellFactor(total);
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\ngeomean total: " << std::fixed;
    std::cout.precision(2);
    std::cout << geoMean(totals)
              << "x  (paper Fig. 7 geomean components: xbegin/xend "
                 "17%, conflict 157%, capacity 126%, unknown 66%)\n";
    return 0;
}
