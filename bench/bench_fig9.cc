/**
 * @file
 * Regenerates Figure 9 of the paper: effectiveness of the loop-cut
 * optimization. Four configurations per application — the TSan
 * baseline and TxRace with no loop-cutting (falls back to the slow
 * path on every capacity abort), with the dynamically learned
 * threshold, and with the profiled threshold (which avoids even the
 * first capacity abort of a loop).
 */

#include <iostream>

#include "harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace txrace;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    Table table({"application", "TSan", "TxRace-NoOpt",
                 "TxRace-DynLoopcut", "TxRace-ProfLoopcut",
                 "capacity NoOpt/Dyn/Prof"});
    std::vector<double> g_tsan, g_noopt, g_dyn, g_prof;

    // Overheads are the mean of several seeds, as the paper averages
    // five trials per configuration.
    constexpr int kSeeds = 5;

    for (const std::string &name : bench::selectedApps(opt)) {
        workloads::WorkloadParams params;
        params.nWorkers = opt.workers;
        params.scale = opt.scale;
        workloads::AppModel app = workloads::makeApp(name, params);

        const core::RunMode modes[] = {
            core::RunMode::TSan, core::RunMode::TxRaceNoOpt,
            core::RunMode::TxRaceDynLoopcut,
            core::RunMode::TxRaceProfLoopcut};
        double mean[4] = {};
        uint64_t capacity[4] = {};
        for (int s = 0; s < kSeeds; ++s) {
            bench::Options seed_opt = opt;
            seed_opt.seed = opt.seed + static_cast<uint64_t>(s);
            core::RunResult native =
                bench::runApp(app, core::RunMode::Native, seed_opt);
            for (int m = 0; m < 4; ++m) {
                core::RunResult r =
                    bench::runApp(app, modes[m], seed_opt);
                mean[m] += r.overheadVs(native) / kSeeds;
                capacity[m] += r.stats.get("tx.abort.capacity");
            }
        }

        g_tsan.push_back(mean[0]);
        g_noopt.push_back(mean[1]);
        g_dyn.push_back(mean[2]);
        g_prof.push_back(mean[3]);

        table.newRow();
        table.cell(app.name);
        for (int m = 0; m < 4; ++m)
            table.cellFactor(mean[m]);
        table.cell(std::to_string(capacity[1] / kSeeds) + "/" +
                   std::to_string(capacity[2] / kSeeds) + "/" +
                   std::to_string(capacity[3] / kSeeds));
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\ngeomean: TSan " << std::fixed;
    std::cout.precision(2);
    std::cout << geoMean(g_tsan) << "x, NoOpt " << geoMean(g_noopt)
              << "x, DynLoopcut " << geoMean(g_dyn) << "x, ProfLoopcut "
              << geoMean(g_prof)
              << "x  (paper: 11.68x / - / 5.34x / 4.65x)\n";
    return 0;
}
