/**
 * @file
 * Campaign scaling harness: the same fixed campaign executed with
 * 1/2/4/8 pool jobs. Reports wall time, runs/s and speedup per job
 * count, and — the determinism contract made measurable — asserts
 * that every job count produced a byte-identical txrace-campaign-v1
 * report.
 *
 * Honest numbers: speedup is bounded by the physical cores of the
 * measuring host. On a single-core container every job count
 * serializes and the value of this harness is the byte-identity
 * check plus the overhead floor of the pool machinery.
 *
 *   bench_campaign [--seed N] [--scale N] [--csv]
 */

#include <iostream>
#include <sstream>
#include <thread>

#include "campaign/campaign.hh"
#include "harness.hh"
#include "support/log.hh"

using namespace txrace;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    campaign::CampaignConfig cfg;
    cfg.apps = {"raytrace", "streamcluster", "canneal", "x264"};
    cfg.seedsPerApp = 4;
    cfg.masterSeed = opt.seed;
    cfg.strategy = "sweep";
    cfg.workers = opt.workers;
    cfg.scale = opt.scale;

    const uint32_t kJobs[] = {1, 2, 4, 8};

    std::cout << "campaign scaling: " << cfg.apps.size() << " apps x "
              << cfg.seedsPerApp << " seeds, strategy " << cfg.strategy
              << ", host has "
              << std::thread::hardware_concurrency()
              << " hardware thread(s)\n\n";
    if (opt.csv)
        std::cout << "jobs,wall_s,runs_per_s,speedup,steals\n";
    else
        std::cout << "  jobs   wall(s)   runs/s   speedup   steals\n";

    std::string reference_json;
    double base_wall = 0.0;
    for (uint32_t jobs : kJobs) {
        cfg.jobs = jobs;
        campaign::CampaignResult result = campaign::runCampaign(cfg);

        std::ostringstream json;
        campaign::writeCampaignJson(json, cfg, result);
        if (reference_json.empty())
            reference_json = json.str();
        else if (json.str() != reference_json)
            fatal("campaign report with %u jobs differs from the "
                  "1-job report: determinism contract broken", jobs);

        if (base_wall == 0.0)
            base_wall = result.timing.wallSeconds;
        double speedup = result.timing.wallSeconds > 0.0
                             ? base_wall / result.timing.wallSeconds
                             : 0.0;
        std::cout.precision(2);
        std::cout << std::fixed;
        if (opt.csv)
            std::cout << jobs << "," << result.timing.wallSeconds
                      << "," << result.timing.runsPerSec << ","
                      << speedup << "," << result.timing.steals
                      << "\n";
        else
            std::cout << "  " << jobs << "      "
                      << result.timing.wallSeconds << "      "
                      << result.timing.runsPerSec << "     "
                      << speedup << "x      " << result.timing.steals
                      << "\n";
    }
    std::cout << "\nreports byte-identical across all job counts: yes\n";
    return 0;
}
