/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses.
 */

#ifndef TXRACE_BENCH_HARNESS_HH
#define TXRACE_BENCH_HARNESS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/driver.hh"
#include "workloads/workloads.hh"

namespace txrace::bench {

/** Command-line options common to all harnesses. */
struct Options
{
    uint32_t workers = 4;
    uint64_t scale = 1;
    uint64_t seed = 1;
    /** Trials to average where a harness supports it (paper: 5). */
    uint32_t runs = 1;
    bool csv = false;
    /** Restrict to one application (empty = all). */
    std::string only;
    /** Write per-benchmark machine-readable rows to this file. */
    std::string jsonPath;
};

/** Parse --workers/--scale/--seed/--csv/--app/--json from argv. */
Options parseOptions(int argc, char **argv);

/** Applications to run given the options (all, or the one chosen). */
std::vector<std::string> selectedApps(const Options &opt);

/** Build a RunConfig for @p app at @p mode with the harness seed. */
core::RunConfig configFor(const workloads::AppModel &app,
                          core::RunMode mode, const Options &opt);

/** Run @p app under @p mode. When --json was given, one result row
 *  (app, mode, seed, steps, key counters, wall time) is recorded and
 *  flushed to the file at process exit. */
core::RunResult runApp(const workloads::AppModel &app,
                       core::RunMode mode, const Options &opt);

} // namespace txrace::bench

#endif // TXRACE_BENCH_HARNESS_HH
