/**
 * @file
 * Regenerates Figure 11 of the paper: cost-effectiveness of TxRace
 * versus TSan with sampling at 10%, 50%, and 100%, over the
 * applications in which at least one race is detected. CE is
 * recall / (overhead normalized to full TSan); full TSan's CE is 1.
 */

#include <iostream>

#include "harness.hh"
#include "support/table.hh"

using namespace txrace;

namespace {

const char *kRacyApps[] = {"fluidanimate", "vips", "raytrace",
                           "ferret", "x264", "bodytrack", "facesim",
                           "streamcluster", "canneal"};

} // namespace

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    Table table({"application", "sampling 10%", "sampling 50%",
                 "sampling 100%", "TxRace"});

    std::vector<std::string> apps;
    if (opt.only.empty())
        apps.assign(std::begin(kRacyApps), std::end(kRacyApps));
    else
        apps.push_back(opt.only);

    for (const std::string &name : apps) {
        workloads::WorkloadParams params;
        params.nWorkers = opt.workers;
        params.scale = opt.scale;
        workloads::AppModel app = workloads::makeApp(name, params);

        core::RunResult native =
            bench::runApp(app, core::RunMode::Native, opt);
        core::RunResult tsan =
            bench::runApp(app, core::RunMode::TSan, opt);
        double tsan_ovh = tsan.overheadVs(native);

        auto ce_of = [&](const core::RunResult &r) {
            double norm = r.overheadVs(native) / tsan_ovh;
            double recall = core::recallOf(r.races, tsan.races);
            return norm > 0.0 ? recall / norm : 0.0;
        };

        table.newRow();
        table.cell(app.name);
        for (double rate : {0.1, 0.5, 1.0}) {
            core::RunConfig cfg = bench::configFor(
                app, core::RunMode::TSanSampling, opt);
            cfg.sampleRate = rate;
            core::RunResult r = core::runProgram(app.program, cfg);
            table.cell(ce_of(r));
        }
        core::RunResult txr =
            bench::runApp(app, core::RunMode::TxRaceProfLoopcut, opt);
        table.cell(ce_of(txr));
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n(paper Fig. 11: TxRace beats TSan+sampling on "
                 "almost all racy applications except x264)\n";
    return 0;
}
