/**
 * @file
 * Regenerates Figure 10 of the paper: the number of distinct data
 * races vips accumulates across repeated TxRace runs. Overlap-based
 * detection is sensitive to scheduling, so each run (seed) finds a
 * different subset of the 112 static races; the union converges to
 * the full TSan-reported set after a handful of runs (seven in the
 * paper).
 */

#include <iostream>

#include "harness.hh"
#include "support/table.hh"

using namespace txrace;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);
    if (opt.only.empty())
        opt.only = "vips";
    constexpr int kRuns = 7;

    workloads::WorkloadParams params;
    params.nWorkers = opt.workers;
    params.scale = opt.scale;
    workloads::AppModel app = workloads::makeApp(opt.only, params);

    core::RunResult tsan =
        bench::runApp(app, core::RunMode::TSan, opt);

    Table table({"run", "seed", "races this run", "new",
                 "cumulative distinct", "TSan total"});
    detector::RaceSet cumulative;
    for (int run = 1; run <= kRuns; ++run) {
        bench::Options run_opt = opt;
        run_opt.seed = opt.seed + static_cast<uint64_t>(run - 1);
        core::RunResult txr = bench::runApp(
            app, core::RunMode::TxRaceProfLoopcut, run_opt);
        size_t before = cumulative.count();
        cumulative.merge(txr.races);
        table.newRow();
        table.cell(static_cast<uint64_t>(run));
        table.cell(run_opt.seed);
        table.cell(static_cast<uint64_t>(txr.races.count()));
        table.cell(static_cast<uint64_t>(cumulative.count() - before));
        table.cell(static_cast<uint64_t>(cumulative.count()));
        table.cell(static_cast<uint64_t>(tsan.races.count()));
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n(paper Fig. 10: ~79 races per run, all 112 "
                 "distinct races accumulated by run 7)\n";
    return 0;
}
