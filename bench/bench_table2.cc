/**
 * @file
 * Regenerates Table 2 of the paper: cost-effectiveness of TxRace
 * versus the TSan baseline. For each application, the TxRace
 * overhead normalized to TSan's, the recall (fraction of
 * TSan-reported races TxRace also reports; 1.0 when there are none),
 * and the cost-effectiveness ratio CE = recall / normalized-overhead
 * (TSan's CE is 1 by construction).
 */

#include <iostream>

#include "harness.hh"
#include "support/stats.hh"
#include "support/table.hh"

using namespace txrace;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);

    Table table({"application", "overhead", "recall",
                 "cost-effectiveness", "paper-CE"});
    std::vector<double> g_ovh, g_recall, g_ce;

    const double paper_ce[] = {1.02, 2.21, 1.7, 12.17, 13.32, 1.9,
                               1.95, 1.15, 1.08, 2.83, 8.71, 1.15,
                               1.48, 1.55};
    size_t idx = 0;

    for (const std::string &name : bench::selectedApps(opt)) {
        workloads::WorkloadParams params;
        params.nWorkers = opt.workers;
        params.scale = opt.scale;
        workloads::AppModel app = workloads::makeApp(name, params);

        core::RunResult native =
            bench::runApp(app, core::RunMode::Native, opt);
        core::RunResult tsan =
            bench::runApp(app, core::RunMode::TSan, opt);
        core::RunResult txr =
            bench::runApp(app, core::RunMode::TxRaceProfLoopcut, opt);

        double norm_ovh =
            txr.overheadVs(native) / tsan.overheadVs(native);
        double recall = core::recallOf(txr.races, tsan.races);
        double ce = norm_ovh > 0.0 ? recall / norm_ovh : 0.0;
        g_ovh.push_back(norm_ovh);
        g_recall.push_back(std::max(recall, 0.01));
        g_ce.push_back(ce);

        table.newRow();
        table.cell(app.name);
        table.cell(norm_ovh);
        table.cell(recall);
        table.cell(ce);
        if (opt.only.empty() && idx < 14)
            table.cell(paper_ce[idx]);
        else
            table.cell(std::string("-"));
        ++idx;
    }

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\ngeomean: overhead " << std::fixed;
    std::cout.precision(2);
    std::cout << geoMean(g_ovh) << ", recall " << geoMean(g_recall)
              << ", cost-effectiveness " << geoMean(g_ce)
              << "  (paper: 0.38, 0.95, 2.38)\n";
    return 0;
}
