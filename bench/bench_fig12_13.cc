/**
 * @file
 * Regenerates Figures 12 and 13 of the paper: for bodytrack, the
 * runtime overhead (Fig. 12) and the recall (Fig. 13) of TSan with
 * sampling as the sampling rate sweeps 0..100%, both normalized to
 * full (100%) sampling — plus TxRace's operating point for
 * comparison. In the paper, TxRace costs as much as sampling ~25.5%
 * of memory operations but detects as much as sampling ~47.2%.
 *
 * Recall at each rate is averaged over three seeds (sampling is
 * stochastic); the paper likewise averages five trials.
 */

#include <iostream>

#include "harness.hh"
#include "support/table.hh"

using namespace txrace;

int
main(int argc, char **argv)
{
    bench::Options opt = bench::parseOptions(argc, argv);
    if (opt.only.empty())
        opt.only = "bodytrack";

    workloads::WorkloadParams params;
    params.nWorkers = opt.workers;
    params.scale = opt.scale;
    workloads::AppModel app = workloads::makeApp(opt.only, params);

    core::RunResult native =
        bench::runApp(app, core::RunMode::Native, opt);
    core::RunResult tsan = bench::runApp(app, core::RunMode::TSan, opt);
    double full_extra = tsan.overheadVs(native) - 1.0;

    Table table({"sampling rate", "normalized overhead (Fig.12)",
                 "recall (Fig.13)"});
    constexpr int kSeeds = 3;
    for (int pct = 0; pct <= 100; pct += 10) {
        double ovh_sum = 0.0, recall_sum = 0.0;
        for (int s = 0; s < kSeeds; ++s) {
            core::RunConfig cfg = bench::configFor(
                app, core::RunMode::TSanSampling, opt);
            cfg.sampleRate = pct / 100.0;
            cfg.machine.seed = opt.seed + static_cast<uint64_t>(s);
            core::RunResult r = core::runProgram(app.program, cfg);
            ovh_sum += (r.overheadVs(native) - 1.0) / full_extra;
            recall_sum += core::recallOf(r.races, tsan.races);
        }
        table.newRow();
        table.cell(std::to_string(pct) + "%");
        table.cell(ovh_sum / kSeeds);
        table.cell(recall_sum / kSeeds);
    }

    core::RunResult txr =
        bench::runApp(app, core::RunMode::TxRaceProfLoopcut, opt);
    table.newRow();
    table.cell(std::string("TxRace"));
    table.cell((txr.overheadVs(native) - 1.0) / full_extra);
    table.cell(core::recallOf(txr.races, tsan.races));

    if (opt.csv)
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    std::cout << "\n(paper: TxRace at normalized overhead 0.69 — "
                 "equivalent to ~25.5% sampling cost — with recall "
                 "0.75 — equivalent to ~47.2% sampling)\n";
    return 0;
}
