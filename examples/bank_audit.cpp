/**
 * @file
 * Scenario: a bank with per-account locks. Transfers are correctly
 * locked; a later-added audit feature reads balances without taking
 * the locks — a classic real-world race pattern (the "it's only a
 * read" fallacy).
 *
 * The example shows the TxRace workflow a developer would follow:
 * run the instrumented binary, get the exact racy source locations
 * from the report (tags stand in for file:line here), and compare
 * what the run cost versus the always-on checker.
 */

#include <cstdio>

#include "core/driver.hh"
#include "ir/builder.hh"

using namespace txrace;

namespace {

ir::Program
buildBank(bool fixed)
{
    ir::ProgramBuilder b;
    constexpr uint32_t kTellers = 3;
    constexpr uint64_t kAccounts = 16;
    ir::Addr balances = b.alloc("balances", kAccounts * 64, 64);
    ir::Addr ledger = b.allocPrivate("ledger", (kTellers + 2) * 512);

    // Tellers: move money between randomly chosen accounts, always
    // under the account-stripe lock.
    ir::FuncId teller = b.beginFunction("teller");
    b.loop(40, [&] {
        b.lock(0);
        b.loop(3, [&] {
            b.load(ir::AddrExpr::randomIn(balances, kAccounts, 64),
                   "transfer.cc:31 read balance");
            b.store(ir::AddrExpr::randomIn(balances, kAccounts, 64),
                    "transfer.cc:33 write balance");
        });
        b.unlock(0);
        b.storePrivate(ir::AddrExpr::perThread(ledger, 512));
        b.compute(6);
    });
    b.endFunction();

    // Auditor: sums all balances. The buggy version forgets the lock.
    ir::FuncId auditor = b.beginFunction("auditor");
    b.loop(12, [&] {
        if (fixed)
            b.lock(0);
        b.loop(6, [&] {
            b.load(ir::AddrExpr::randomIn(balances, kAccounts, 64),
                   "audit.cc:58 unlocked balance read");
        });
        if (fixed)
            b.unlock(0);
        b.syscall(2);  // append to the audit log
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(teller, kTellers);
    b.spawn(auditor, 1);
    b.joinAll();
    b.endFunction();
    return b.build();
}

void
report(const char *title, const ir::Program &prog)
{
    core::RunConfig cfg;
    cfg.machine.seed = 7;

    cfg.mode = core::RunMode::Native;
    core::RunResult native = core::runProgram(prog, cfg);
    cfg.mode = core::RunMode::TSan;
    core::RunResult tsan = core::runProgram(prog, cfg);
    cfg.mode = core::RunMode::TxRaceProfLoopcut;
    core::RunResult txr = core::runProgram(prog, cfg);

    std::printf("== %s ==\n", title);
    std::printf("  TSan:   %.2fx overhead, %zu race(s)\n",
                tsan.overheadVs(native), tsan.races.count());
    std::printf("  TxRace: %.2fx overhead, %zu race(s)\n",
                txr.overheadVs(native), txr.races.count());
    for (const auto &race : txr.races.all()) {
        std::printf("  data race between\n    %s\n    %s\n",
                    prog.instr(race.first).tag.c_str(),
                    prog.instr(race.second).tag.c_str());
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    ir::Program buggy = buildBank(/*fixed=*/false);
    ir::Program fixed = buildBank(/*fixed=*/true);
    report("audit WITHOUT the account lock (buggy)", buggy);
    report("audit WITH the account lock (fixed)", fixed);
    return 0;
}
