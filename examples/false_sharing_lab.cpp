/**
 * @file
 * Lab: why cache-line-granularity conflict detection needs a precise
 * slow path (paper challenge #2).
 *
 * The same per-thread-counter program is laid out twice: packed
 * (four 8-byte counters in one 64-byte line) and padded (one counter
 * per line). The packed layout floods the HTM fast path with
 * conflicts even though the program is completely race-free; the
 * TxRace slow path re-checks at 8-byte granularity and filters every
 * one of them — zero false warnings either way, but very different
 * cost profiles. The printed breakdown mirrors the paper's Figure 7
 * buckets.
 */

#include <cstdio>

#include "core/driver.hh"
#include "ir/builder.hh"
#include "mem/layout.hh"
#include "sim/costmodel.hh"

using namespace txrace;

namespace {

ir::Program
buildCounters(uint64_t slot_stride)
{
    ir::ProgramBuilder b;
    constexpr uint32_t kWorkers = 4;
    ir::Addr table = b.alloc("lookup", 512 * 8);
    ir::Addr counters =
        b.alloc("counters", (kWorkers + 1) * slot_stride, 64);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(50, [&] {
        b.loop(6, [&] {
            b.load(ir::AddrExpr::randomIn(table, 512, 8), "lookup");
            b.compute(2);
        });
        // Each worker only ever touches its own counter: race-free.
        b.store(ir::AddrExpr::perThread(counters, slot_stride),
                "my counter");
        b.syscall(1);
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, kWorkers);
    b.joinAll();
    b.endFunction();
    return b.build();
}

void
runLab(const char *title, uint64_t stride)
{
    ir::Program prog = buildCounters(stride);
    core::RunConfig cfg;
    cfg.machine.seed = 11;

    cfg.mode = core::RunMode::Native;
    core::RunResult native = core::runProgram(prog, cfg);
    cfg.mode = core::RunMode::TxRaceProfLoopcut;
    core::RunResult txr = core::runProgram(prog, cfg);

    std::printf("== %s (counter stride %llu bytes) ==\n", title,
                (unsigned long long)stride);
    std::printf("  conflict aborts: %llu, races reported: %zu\n",
                (unsigned long long)txr.stats.get("tx.abort.conflict"),
                txr.races.count());
    std::printf("  overhead %.2fx, breakdown:", txr.overheadVs(native));
    for (size_t i = 0; i < sim::kNumBuckets; ++i) {
        if (txr.buckets[i] == 0)
            continue;
        std::printf("  %s %.2fx",
                    sim::bucketName(static_cast<sim::Bucket>(i)),
                    static_cast<double>(txr.buckets[i]) /
                        static_cast<double>(native.totalCost));
    }
    std::printf("\n\n");
}

} // namespace

int
main()
{
    std::printf("A race-free program, two memory layouts.\n\n");
    runLab("packed: false sharing", mem::kGranuleSize);
    runLab("padded: one counter per line", mem::kLineSize);
    std::printf("Same program, same (absent) races — the packed "
                "layout pays for its cache-line conflicts on the "
                "slow path, the padded one runs almost entirely on "
                "the HTM fast path.\n");
    return 0;
}
