/**
 * @file
 * Demonstration of the capacity problem and the loop-cut fix (§4.3).
 *
 * A streaming kernel writes a long strided row per iteration — its
 * write set overflows the transactional buffer, so every iteration
 * capacity-aborts and falls back to the slow path under
 * TxRace-NoOpt. TxRace-DynLoopcut learns the largest committing
 * segment length online (first abort -> threshold 2, +1 per
 * committed region, -1 and pinned on a governed abort);
 * TxRace-ProfLoopcut preloads the profiled threshold and avoids even
 * the first abort.
 */

#include <cstdio>

#include "core/driver.hh"
#include "ir/builder.hh"

using namespace txrace;

namespace {

ir::Program
buildStreamingKernel()
{
    ir::ProgramBuilder b;
    constexpr uint32_t kWorkers = 2;
    constexpr uint64_t kRows = 14;  // write set: 14 same-set lines
    ir::Addr params = b.alloc("params", 64 * 8);
    ir::Addr matrix =
        b.alloc("matrix", kRows * 4096 + (kWorkers + 1) * 64, 64);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(25, [&] {
        for (int k = 0; k < 6; ++k)
            b.load(ir::AddrExpr::randomIn(params, 64, 8), "param");
        b.loop(kRows, [&] {
            ir::AddrExpr e = ir::AddrExpr::perThread(matrix, 64);
            e.loopStride = 4096;  // rows collide in one L1 set
            b.store(e, "row");
        });
        b.syscall(1);
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, kWorkers);
    b.joinAll();
    b.endFunction();
    return b.build();
}

} // namespace

int
main()
{
    ir::Program prog = buildStreamingKernel();
    core::RunConfig cfg;
    cfg.machine.seed = 3;

    cfg.mode = core::RunMode::Native;
    core::RunResult native = core::runProgram(prog, cfg);

    std::printf("%-22s %10s %10s %10s %10s\n", "configuration",
                "overhead", "commits", "capacity", "loop-cuts");
    for (core::RunMode mode :
         {core::RunMode::TSan, core::RunMode::TxRaceNoOpt,
          core::RunMode::TxRaceDynLoopcut,
          core::RunMode::TxRaceProfLoopcut}) {
        cfg.mode = mode;
        core::RunResult r = core::runProgram(prog, cfg);
        std::printf("%-22s %9.2fx %10llu %10llu %10llu\n",
                    core::runModeName(mode), r.overheadVs(native),
                    (unsigned long long)r.stats.get("tx.committed"),
                    (unsigned long long)r.stats.get("tx.abort.capacity"),
                    (unsigned long long)r.stats.get("txrace.loop_cuts"));
    }
    std::printf("\nNoOpt re-executes every overflowing region on the "
                "slow path; DynLoopcut learns the segment length after "
                "a couple of aborts; ProfLoopcut starts with the "
                "profiled threshold and never overflows.\n");
    return 0;
}
