/**
 * @file
 * Quickstart: build a small multithreaded program with the IR
 * builder, run it natively, under the TSan baseline, and under
 * TxRace, and print the overheads and the races each tool found.
 *
 * The program has one genuine data race (an unlocked counter update)
 * and one false-sharing pattern (per-thread slots packed into one
 * cache line) that trips the HTM fast path but is correctly filtered
 * by the slow path.
 */

#include <cstdio>

#include "core/driver.hh"
#include "ir/builder.hh"
#include "mem/layout.hh"

using namespace txrace;

int
main()
{
    // --- 1. Describe the program under test. -------------------------
    ir::ProgramBuilder b;
    constexpr uint32_t kWorkers = 4;

    ir::Addr table = b.alloc("shared-table", 1024 * 8);
    ir::Addr counter = b.alloc("hit-counter", 8);
    // Four 8-byte per-thread slots in one 64-byte line: false sharing.
    ir::Addr slots = b.alloc("packed-slots", (kWorkers + 1) * 8, 8);

    ir::FuncId worker = b.beginFunction("worker");
    b.loop(8, [&] {
        b.loop(5, [&] {
            b.loop(8, [&] {
                b.load(ir::AddrExpr::randomIn(table, 1024, 8),
                       "table lookup");
                b.compute(5);
            });
            b.syscall(1);  // flush a batch; also a region boundary
        });
        // False sharing (not a race): every worker updates its own
        // 8-byte slot, but the slots share one cache line, so the HTM
        // flags a conflict that the slow path correctly dismisses.
        b.store(ir::AddrExpr::perThread(slots, 8), "own slot");
        // BUG: increment of a shared counter without holding the lock
        // (once per batch-of-batches, so most regions are clean).
        b.load(ir::AddrExpr::absolute(counter), "counter read");
        b.store(ir::AddrExpr::absolute(counter), "counter write");
    });
    b.endFunction();

    b.beginFunction("main");
    b.spawn(worker, kWorkers);
    b.joinAll();
    b.endFunction();
    ir::Program prog = b.build();

    // --- 2. Run it under each tool. ----------------------------------
    core::RunConfig cfg;
    cfg.machine.seed = 42;

    cfg.mode = core::RunMode::Native;
    core::RunResult native = core::runProgram(prog, cfg);

    cfg.mode = core::RunMode::TSan;
    core::RunResult tsan = core::runProgram(prog, cfg);

    cfg.mode = core::RunMode::TxRaceProfLoopcut;
    core::RunResult txrace = core::runProgram(prog, cfg);

    // --- 3. Report. ---------------------------------------------------
    std::printf("native cost: %llu units\n",
                (unsigned long long)native.totalCost);
    for (const core::RunResult *r : {&tsan, &txrace}) {
        std::printf("\n%s: overhead %.2fx, %zu distinct race(s)\n",
                    core::runModeName(r->mode), r->overheadVs(native),
                    r->races.count());
        for (const auto &race : r->races.all()) {
            std::printf("  race between:\n    [%u] %s\n    [%u] %s\n",
                        race.first,
                        prog.instr(race.first).tag.c_str(),
                        race.second,
                        prog.instr(race.second).tag.c_str());
        }
    }
    std::printf("\ncommitted transactions: %llu, conflict aborts: %llu"
                ", capacity: %llu, unknown: %llu\n",
                (unsigned long long)txrace.stats.get("tx.committed"),
                (unsigned long long)txrace.stats.get("tx.abort.conflict"),
                (unsigned long long)txrace.stats.get("tx.abort.capacity"),
                (unsigned long long)txrace.stats.get("tx.abort.unknown"));
    return 0;
}
