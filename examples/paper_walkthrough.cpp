/**
 * @file
 * A narrated reproduction of the paper's mechanism figures, using the
 * structured event log to show each protocol step actually happening.
 *
 *  - Figure 3: conflict -> rollback -> TxFail write -> artificial
 *    aborts -> slow path -> pinpointed race.
 *  - Figure 4: the same race found with long transactions and missed
 *    with short (cut) ones.
 *  - Figure 5: a capacity-stuck slow thread racing a fast thread.
 *  - Figure 6: path alternation with a signal/wait edge tracked on
 *    the fast path — no false warning.
 */

#include <cstdio>
#include <iostream>

#include "core/driver.hh"
#include "core/report_format.hh"
#include "ir/builder.hh"

using namespace txrace;
using namespace txrace::ir;

namespace {

core::RunConfig
config(core::RunMode mode = core::RunMode::TxRaceDynLoopcut)
{
    core::RunConfig cfg;
    cfg.mode = mode;
    cfg.machine.seed = 5;
    cfg.machine.interruptPerStep = 0.0;
    cfg.machine.recordEvents = true;
    return cfg;
}

void
pad(ProgramBuilder &b, Addr base)
{
    for (int i = 0; i < 6; ++i)
        b.load(AddrExpr::absolute(base + 8 * i), "pad");
}

void
figure3()
{
    std::printf("== Figure 3: the TxFail protocol ==\n");
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr x = b.alloc("X", 8);
    FuncId worker = b.beginFunction("worker");
    b.loop(6, [&] {
        pad(b, data);
        b.store(AddrExpr::absolute(x), "X=... (unsynchronized)");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(worker, 3);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunResult r = core::runProgram(p, config());
    r.events.print(std::cout, 14);
    core::printRaceReport(p, r, std::cout);
    std::printf("\n");
}

void
figure4()
{
    std::printf("== Figure 4: transaction length vs detection ==\n");
    // The same far-apart race twice; with one long region per thread
    // the accesses share a transaction window, with per-iteration
    // cuts (short transactions) they do not.
    auto build = [](bool short_txs) {
        ProgramBuilder b;
        Addr data = b.alloc("data", 4096);
        Addr x = b.alloc("X", 8);
        FuncId t1 = b.beginFunction("t1");
        b.store(AddrExpr::absolute(x), "X=1");
        b.loop(30, [&] {
            pad(b, data);
            if (short_txs)
                b.syscall(1);  // cuts the region every iteration
        });
        b.endFunction();
        FuncId t2 = b.beginFunction("t2");
        b.loop(30, [&] {
            pad(b, data);
            if (short_txs)
                b.syscall(1);
        });
        b.store(AddrExpr::absolute(x), "X=2");
        b.endFunction();
        b.beginFunction("main");
        b.spawn(t1, 1);
        b.spawn(t2, 1);
        b.joinAll();
        b.endFunction();
        return b.build();
    };

    for (bool short_txs : {false, true}) {
        Program p = build(short_txs);
        size_t found = 0;
        for (uint64_t seed = 1; seed <= 8; ++seed) {
            core::RunConfig cfg = config();
            cfg.machine.seed = seed;
            cfg.machine.recordEvents = false;
            found += core::runProgram(p, cfg).races.count();
        }
        std::printf("  %s transactions: race found in %zu of 8 runs\n",
                    short_txs ? "short (cut)" : "long", found);
    }
    std::printf("  (the happens-before baseline reports it always)\n\n");
}

void
figure5()
{
    std::printf("== Figure 5: concurrent fast and slow paths ==\n");
    ProgramBuilder b;
    Addr data = b.alloc("data", 4096);
    Addr wide = b.alloc("wide", 16 * 4096 + 1024, 64);
    Addr x = b.alloc("X", 8);
    FuncId slowpoke = b.beginFunction("slowpoke");
    b.loop(10, [&] {
        pad(b, data);
        b.loop(12, [&] {  // overflows: this thread lives on the slow path
            AddrExpr e = AddrExpr::perThread(wide, 64);
            e.loopStride = 4096;
            b.store(e, "stream");
        });
        b.store(AddrExpr::absolute(x), "slow-path write to X");
        b.syscall(1);
    });
    b.endFunction();
    FuncId fast = b.beginFunction("fastpath");
    b.loop(30, [&] {
        pad(b, data);
        b.load(AddrExpr::absolute(x), "fast-path read of X");
        b.syscall(1);
    });
    b.endFunction();
    b.beginFunction("main");
    b.spawn(slowpoke, 1);
    b.spawn(fast, 1);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunConfig cfg = config(core::RunMode::TxRaceNoOpt);
    cfg.machine.recordEvents = false;
    size_t found = 0;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        cfg.machine.seed = seed;
        found += core::runProgram(p, cfg).races.count() > 0;
    }
    std::printf("  capacity keeps thread 1 on the slow path; strong\n"
                "  isolation catches its writes against the fast\n"
                "  thread's transactions in %zu of 8 runs (the paper:\n"
                "  detection works in one direction only).\n\n",
                found);
}

void
figure6()
{
    std::printf("== Figure 6: sync tracked on the fast path ==\n");
    ProgramBuilder b;
    Addr x = b.alloc("X", 8);
    FuncId t1 = b.beginFunction("t1");
    b.store(AddrExpr::absolute(x), "X=1");
    b.syscall(1);
    b.signal(0);
    b.compute(30);
    b.endFunction();
    FuncId t2 = b.beginFunction("t2");
    b.wait(0);
    b.store(AddrExpr::absolute(x), "X=2");
    b.syscall(1);
    b.compute(30);
    b.endFunction();
    b.beginFunction("main");
    b.spawn(t1, 1);
    b.spawn(t2, 1);
    b.joinAll();
    b.endFunction();
    Program p = b.build();

    core::RunResult r = core::runProgram(p, config());
    std::printf("  both stores of X are software-checked (tiny slow\n"
                "  regions), with a signal->wait edge between them\n"
                "  established while on the fast path.\n"
                "  false warnings reported: %zu (must be 0)\n\n",
                r.races.count());
}

} // namespace

int
main()
{
    figure3();
    figure4();
    figure5();
    figure6();
    return 0;
}
